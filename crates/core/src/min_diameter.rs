//! The minimum-diameter variant (the paper's conclusion): minimize the
//! largest delay between **any pair** of participating nodes, rather than
//! from a fixed source.
//!
//! Following the paper: "To construct an optimal solution in the sphere,
//! an artificial root node should be chosen among nodes closest to the
//! sphere center. In general convex regions, the algorithm will only find
//! a tree with delay within factor of 2 of the optimal as the number of
//! nodes becomes large."
//!
//! Implementation: compute the smallest enclosing circle (Welzl, exact, in
//! 2-D) or an approximate bounding sphere (Ritter, 3-D) of the points,
//! promote the point nearest its center to the root, and run the
//! radius-minimizing polar-grid algorithm from there. The tree diameter is
//! at most twice the tree radius, and the point-set diameter lower-bounds
//! any spanning tree's diameter — both bounds are reported.

use omt_geom::{bounding_sphere, smallest_enclosing_circle, Point2, Point3};
use omt_tree::MulticastTree;

use crate::error::BuildError;
use crate::polar_grid::PolarGridBuilder;
use crate::sphere_grid::SphereGridBuilder;

/// Diagnostics of a minimum-diameter construction.
#[derive(Clone, Debug, PartialEq)]
pub struct MinDiameterReport {
    /// Index (into the input slice) of the point promoted to root.
    pub root: usize,
    /// The tree's diameter — the objective.
    pub diameter: f64,
    /// The tree's radius from the promoted root.
    pub radius: f64,
    /// Lower bound on any spanning tree's diameter: the largest pairwise
    /// distance of the point set.
    pub lower_bound: f64,
    /// Radius of the smallest enclosing circle/sphere (another lower
    /// bound: `diameter ≥ enclosing radius`, since some point is that far
    /// from every possible "center" of the tree).
    pub enclosing_radius: f64,
}

/// Builder for minimum-diameter degree-constrained trees.
///
/// The returned tree is rooted at the promoted center-most point; the
/// remaining `n - 1` points are its receivers. Node indices in the tree
/// refer to the input slice **with the root removed** — use
/// [`MinDiameterReport::root`] to recover the mapping
/// (`tree_index < root ? tree_index : tree_index + 1`).
///
/// # Examples
///
/// ```
/// use omt_core::MinDiameterBuilder;
/// use omt_geom::{Disk, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = SmallRng::seed_from_u64(4);
/// let points = Disk::unit().sample_n(&mut rng, 2000);
/// let (tree, report) = MinDiameterBuilder::new()
///     .max_out_degree(6)
///     .build_2d(&points)?;
/// assert!(report.diameter >= report.lower_bound);
/// assert!(report.diameter <= 2.0 * report.radius + 1e-12);
/// assert_eq!(tree.len(), 1999);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinDiameterBuilder {
    max_out_degree: u32,
}

impl Default for MinDiameterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MinDiameterBuilder {
    /// Creates a builder with out-degree budget 6.
    pub fn new() -> Self {
        Self { max_out_degree: 6 }
    }

    /// Sets the out-degree budget (≥ 2).
    #[must_use]
    pub fn max_out_degree(mut self, budget: u32) -> Self {
        self.max_out_degree = budget;
        self
    }

    /// Builds a minimum-diameter tree over 2-D points.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`PolarGridBuilder::build_with_report`](crate::PolarGridBuilder::build_with_report);
    /// additionally requires at least one point (the root must exist).
    pub fn build_2d(
        &self,
        points: &[Point2],
    ) -> Result<(MulticastTree<2>, MinDiameterReport), BuildError> {
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let circle = smallest_enclosing_circle(points).ok_or(BuildError::NonFiniteSource)?;
        // Promote the point nearest the enclosing center.
        let root = nearest_index_2d(points, &circle.center);
        let rest: Vec<Point2> = points
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != root)
            .map(|(_, p)| *p)
            .collect();
        let (tree, _) = PolarGridBuilder::new()
            .max_out_degree(self.max_out_degree)
            .build_with_report(points[root], &rest)?;
        let diameter = tree.diameter();
        let radius = tree.radius();
        let lower_bound = omt_geom::diameter(points).map_or(0.0, |(d, _, _)| d);
        Ok((
            tree,
            MinDiameterReport {
                root,
                diameter,
                radius,
                lower_bound,
                enclosing_radius: circle.radius,
            },
        ))
    }

    /// Builds a minimum-diameter tree over 3-D points (approximate
    /// bounding-sphere center).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MinDiameterBuilder::build_2d`].
    pub fn build_3d(
        &self,
        points: &[Point3],
    ) -> Result<(MulticastTree<3>, MinDiameterReport), BuildError> {
        if let Some(bad) = points.iter().position(|p| !p.is_finite()) {
            return Err(BuildError::NonFinitePoint { index: bad });
        }
        let sphere = bounding_sphere(points).ok_or(BuildError::NonFiniteSource)?;
        let root = nearest_index_3d(points, &sphere.center);
        let rest: Vec<Point3> = points
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != root)
            .map(|(_, p)| *p)
            .collect();
        let tree = SphereGridBuilder::new()
            .max_out_degree(self.max_out_degree.max(2))
            .build(points[root], &rest)?;
        let diameter = tree.diameter();
        let radius = tree.radius();
        // Exact pairwise diameter is O(n²) in 3-D; use the bounding-sphere
        // radius as a conservative lower bound: some point lies that far
        // from every candidate tree center.
        let lower_bound = sphere.radius;
        Ok((
            tree,
            MinDiameterReport {
                root,
                diameter,
                radius,
                lower_bound,
                enclosing_radius: sphere.radius,
            },
        ))
    }
}

fn nearest_index_2d(points: &[Point2], target: &Point2) -> usize {
    points
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.distance_squared(target)
                .total_cmp(&b.1.distance_squared(target))
        })
        .map(|(i, _)| i)
        .expect("nonempty input")
}

fn nearest_index_3d(points: &[Point3], target: &Point3) -> usize {
    points
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.distance_squared(target)
                .total_cmp(&b.1.distance_squared(target))
        })
        .map(|(i, _)| i)
        .expect("nonempty input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Ball, Disk, Region, Translated};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn diameter_within_factor_two_of_lower_bound_asymptotically() {
        // For uniform disks the paper claims asymptotic optimality of the
        // diameter too (root near the center); the ratio must fall toward 1.
        let mut prev = f64::INFINITY;
        for (n, seed) in [(200usize, 1u64), (2_000, 2), (20_000, 3)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pts = Disk::unit().sample_n(&mut rng, n);
            let (tree, report) = MinDiameterBuilder::new().build_2d(&pts).unwrap();
            tree.validate(Some(6)).unwrap();
            let ratio = report.diameter / report.lower_bound;
            assert!(ratio >= 1.0 - 1e-9);
            assert!(ratio <= prev + 0.05, "ratio {ratio} grew");
            prev = ratio;
        }
        assert!(prev < 1.35, "final diameter ratio {prev}");
    }

    #[test]
    fn root_is_near_enclosing_center() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Shifted disk: the root must adapt to the region, not the origin.
        let region = Translated::new(Disk::unit(), omt_geom::Point2::new([10.0, -3.0]));
        let pts = region.sample_n(&mut rng, 1000);
        let (_, report) = MinDiameterBuilder::new().build_2d(&pts).unwrap();
        let root_pos = pts[report.root];
        assert!(
            root_pos.distance(&omt_geom::Point2::new([10.0, -3.0])) < 0.15,
            "root {root_pos:?} far from region center"
        );
        assert!((report.enclosing_radius - 1.0).abs() < 0.1);
    }

    #[test]
    fn structural_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(6);
        let pts = Disk::unit().sample_n(&mut rng, 500);
        let (tree, report) = MinDiameterBuilder::new()
            .max_out_degree(2)
            .build_2d(&pts)
            .unwrap();
        tree.validate(Some(2)).unwrap();
        assert_eq!(tree.len(), 499);
        assert!(report.diameter <= 2.0 * report.radius + 1e-12);
        assert!(report.diameter >= report.radius - 1e-12);
        assert!(report.diameter >= report.enclosing_radius - 1e-12);
    }

    #[test]
    fn three_dimensional_variant() {
        let mut rng = SmallRng::seed_from_u64(7);
        let pts = Ball::<3>::unit().sample_n(&mut rng, 2000);
        let (tree, report) = MinDiameterBuilder::new()
            .max_out_degree(10)
            .build_3d(&pts)
            .unwrap();
        tree.validate(Some(10)).unwrap();
        assert!(report.diameter >= report.lower_bound - 1e-12);
        assert!(report.diameter < 4.5, "diameter {}", report.diameter);
        // Root near the ball center.
        assert!(pts[report.root].norm() < 0.2);
    }

    #[test]
    fn degenerate_inputs() {
        // Single point: an empty tree rooted at it.
        let (tree, report) = MinDiameterBuilder::new()
            .build_2d(&[omt_geom::Point2::new([3.0, 3.0])])
            .unwrap();
        assert!(tree.is_empty());
        assert_eq!(report.root, 0);
        assert_eq!(report.diameter, 0.0);
        // Empty input is an error (no root can exist).
        assert!(MinDiameterBuilder::new().build_2d(&[]).is_err());
        // Bad point.
        assert!(matches!(
            MinDiameterBuilder::new().build_2d(&[omt_geom::Point2::new([f64::NAN, 0.0])]),
            Err(BuildError::NonFinitePoint { index: 0 })
        ));
    }

    #[test]
    fn center_rooting_beats_corner_rooting() {
        // Promoting the central point must produce a smaller diameter than
        // rooting at an extreme point, on average.
        let mut rng = SmallRng::seed_from_u64(8);
        let pts = Disk::unit().sample_n(&mut rng, 3000);
        let (_, center_report) = MinDiameterBuilder::new().build_2d(&pts).unwrap();
        // Root at the farthest-from-center point instead.
        let corner = pts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm().total_cmp(&b.1.norm()))
            .map(|(i, _)| i)
            .unwrap();
        let rest: Vec<omt_geom::Point2> = pts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != corner)
            .map(|(_, p)| *p)
            .collect();
        let corner_tree = crate::PolarGridBuilder::new()
            .build(pts[corner], &rest)
            .unwrap();
        assert!(
            center_report.diameter < corner_tree.diameter(),
            "{} vs {}",
            center_report.diameter,
            corner_tree.diameter()
        );
    }
}
