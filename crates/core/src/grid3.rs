//! The 3-D equal-volume spherical grid (Section IV-B of the paper).
//!
//! Rings are spherical shells whose radii grow by `∛2`, so each shell has
//! twice the volume of the one inside it. Within a shell, cells are angular
//! boxes in `(azimuth θ, z = cos polar)` space, obtained by alternating
//! binary splits of the two angular axes; by Archimedes' hat-box theorem a
//! `(θ, z)` box's solid angle is the product of its side lengths, so the
//! splits are *exactly* equal-volume. Ring `i` carries `2^i` cells and cell
//! `(i, j)` is aligned with cells `(i+1, 2j)` and `(i+1, 2j+1)` — the same
//! binary core-tree structure as in two dimensions.

use core::f64::consts::TAU;

use omt_geom::{ShellCell, SphericalPoint};

/// The 3-D spherical grid over a ball of radius `rho` with `k` rings.
///
/// # Examples
///
/// ```
/// use omt_core::SphereGrid3;
/// use omt_geom::SphericalPoint;
///
/// let grid = SphereGrid3::new(4, 1.0);
/// assert_eq!(grid.cell_count(), 31);
/// // Cells on the same ring have exactly equal volume.
/// let v0 = grid.cell(4, 0).volume();
/// let v9 = grid.cell(4, 9).volume();
/// assert!((v0 - v9).abs() < 1e-12);
/// let p = SphericalPoint::new(0.95, 0.3, 0.2);
/// let (ring, seg) = grid.cell_of(&p);
/// assert!(grid.cell(ring, seg).contains(&p));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SphereGrid3 {
    k: u32,
    rho: f64,
    /// `circle[i] = rho · 2^(-(k-i)/3)` for `i = 0..=k`; `circle[k] = rho`.
    circle: Vec<f64>,
}

impl SphereGrid3 {
    /// Creates the `k`-ring spherical grid over a ball of radius `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not positive and finite, or `k > 60`.
    pub fn new(k: u32, rho: f64) -> Self {
        assert!(rho > 0.0 && rho.is_finite(), "bad ball radius {rho}");
        assert!(k <= 60, "ring count {k} too large");
        let circle = (0..=k)
            .map(|i| rho * 2f64.powf(-((k - i) as f64) / 3.0))
            .collect();
        Self { k, rho, circle }
    }

    /// Number of rings `k`.
    #[inline]
    pub const fn rings(&self) -> u32 {
        self.k
    }

    /// The ball radius `ρ`.
    #[inline]
    pub const fn rho(&self) -> f64 {
        self.rho
    }

    /// Total number of cells: `2^(k+1) - 1`.
    #[inline]
    pub fn cell_count(&self) -> usize {
        ((1u64 << (self.k + 1)) - 1) as usize
    }

    /// Radius of shell boundary `i` (`0 ≤ i ≤ k`; index `k` is the ball
    /// boundary).
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    #[inline]
    pub fn shell_radius(&self, i: u32) -> f64 {
        self.circle[i as usize]
    }

    /// Decodes the angular box of segment `seg` on a ring with `2^ring`
    /// cells: `(θ_lo, θ_hi, z_lo, z_hi)`.
    ///
    /// Split `ℓ` (1-based) halves the azimuth when `ℓ` is odd and the `z`
    /// axis when even, so the box is determined by de-interleaving the bits
    /// of `seg`.
    fn angular_box(ring: u32, seg: u64) -> (f64, f64, f64, f64) {
        let n_theta = ring.div_ceil(2);
        let n_z = ring / 2;
        // De-interleave MSB-first: odd split positions build the azimuth
        // index, even positions the z index.
        let mut ta = 0u64;
        let mut za = 0u64;
        for l in 1..=ring {
            let bit = (seg >> (ring - l)) & 1;
            if l % 2 == 1 {
                ta = (ta << 1) | bit;
            } else {
                za = (za << 1) | bit;
            }
        }
        let theta_w = TAU / (1u64 << n_theta) as f64;
        let theta_lo = ta as f64 * theta_w;
        let theta_hi = if ta + 1 == (1u64 << n_theta) {
            TAU
        } else {
            (ta + 1) as f64 * theta_w
        };
        let z_w = 2.0 / (1u64 << n_z) as f64;
        let z_lo = -1.0 + za as f64 * z_w;
        let z_hi = if za + 1 == (1u64 << n_z) {
            1.0
        } else {
            -1.0 + (za + 1) as f64 * z_w
        };
        (theta_lo, theta_hi, z_lo, z_hi)
    }

    /// The geometric region of cell `(ring, seg)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell(&self, ring: u32, seg: u64) -> ShellCell {
        assert!(ring <= self.k, "ring {ring} out of range");
        if ring == 0 {
            return ShellCell::ball(self.circle[0]);
        }
        assert!(
            seg < (1u64 << ring),
            "segment {seg} out of range for ring {ring}"
        );
        let (t_lo, t_hi, z_lo, z_hi) = Self::angular_box(ring, seg);
        ShellCell::new(
            self.circle[ring as usize - 1],
            self.circle[ring as usize],
            t_lo,
            t_hi,
            z_lo,
            z_hi,
        )
    }

    /// The ring containing radius `r` (clamping radii at or beyond the
    /// boundary into the outermost ring).
    pub fn ring_of_radius(&self, r: f64) -> u32 {
        if r < self.circle[0] {
            return 0;
        }
        if r >= self.circle[self.k as usize] {
            return self.k;
        }
        let guess = (self.k as f64 + 3.0 * (r / self.rho).log2()).floor() as i64 + 1;
        let mut ring = guess.clamp(1, self.k as i64) as u32;
        while ring > 1 && r < self.circle[ring as usize - 1] {
            ring -= 1;
        }
        while ring < self.k && r >= self.circle[ring as usize] {
            ring += 1;
        }
        ring
    }

    /// The angular bit path of a point at the finest level `k`: bit `ℓ`
    /// (MSB-first) records which half the point falls into at angular split
    /// `ℓ`. The segment of the point on any ring `m` is the top `m` bits.
    pub fn angular_path(&self, p: &SphericalPoint) -> u64 {
        let k = self.k;
        if k == 0 {
            return 0;
        }
        let n_theta = k.div_ceil(2);
        let n_z = k / 2;
        let fa = (((p.azimuth / TAU) * (1u64 << n_theta) as f64) as u64).min((1u64 << n_theta) - 1);
        let fz = if n_z == 0 {
            0
        } else {
            ((((p.cos_polar + 1.0) / 2.0) * (1u64 << n_z) as f64) as u64).min((1u64 << n_z) - 1)
        };
        // Interleave MSB-first: θ bits at odd split positions, z at even.
        let mut path = 0u64;
        let mut ti = 0;
        let mut zi = 0;
        for l in 1..=k {
            let bit = if l % 2 == 1 {
                ti += 1;
                (fa >> (n_theta - ti)) & 1
            } else {
                zi += 1;
                (fz >> (n_z - zi)) & 1
            };
            path = (path << 1) | bit;
        }
        path
    }

    /// The cell containing a spherical point.
    pub fn cell_of(&self, p: &SphericalPoint) -> (u32, u64) {
        omt_obs::obs_count!("grid3/cell_of");
        let ring = self.ring_of_radius(p.radius);
        if ring == 0 {
            return (0, 0);
        }
        let seg = self.angular_path(p) >> (self.k - ring);
        (ring, seg)
    }

    /// The parent cell in the core tree, or `None` for the inner ball.
    pub fn parent(&self, ring: u32, seg: u64) -> Option<(u32, u64)> {
        assert!(ring <= self.k, "ring {ring} out of range");
        match ring {
            0 => None,
            1 => Some((0, 0)),
            _ => Some((ring - 1, seg / 2)),
        }
    }

    /// The two aligned children on the next ring, or `None` for
    /// outermost-ring cells.
    pub fn children(&self, ring: u32, seg: u64) -> Option<[(u32, u64); 2]> {
        if ring >= self.k {
            return None;
        }
        if ring == 0 {
            Some([(1, 0), (1, 1)])
        } else {
            Some([(ring + 1, 2 * seg), (ring + 1, 2 * seg + 1)])
        }
    }

    /// The largest angular-diameter bound over cells of `ring` — the 3-D
    /// analogue of the arc length `Δ_i`, used by the equation-(7)-style
    /// delay bound.
    pub fn max_angular_diameter(&self, ring: u32) -> f64 {
        assert!(ring <= self.k, "ring {ring} out of range");
        if ring == 0 {
            // Full angular box at the inner-ball radius.
            return self.circle[0] * (TAU + core::f64::consts::PI);
        }
        (0..(1u64 << ring))
            .map(|seg| self.cell(ring, seg).angular_diameter_bound())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radii_follow_cbrt2_progression() {
        let g = SphereGrid3::new(6, 1.0);
        for i in 0..6 {
            let ratio = g.shell_radius(i + 1) / g.shell_radius(i);
            assert!((ratio - 2f64.cbrt()).abs() < 1e-12);
        }
        assert!((g.shell_radius(6) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn all_cells_have_equal_volume() {
        let g = SphereGrid3::new(5, 1.3);
        let unit = 4.0 / 3.0 * core::f64::consts::PI * 1.3f64.powi(3) * 2f64.powi(-6);
        assert!((g.cell(0, 0).volume() - 2.0 * unit).abs() < 1e-12);
        for ring in 1..=5u32 {
            for seg in 0..(1u64 << ring) {
                assert!(
                    (g.cell(ring, seg).volume() - unit).abs() < 1e-12,
                    "ring {ring} seg {seg}"
                );
            }
        }
    }

    #[test]
    fn volumes_sum_to_ball() {
        let g = SphereGrid3::new(4, 1.0);
        let mut total = g.cell(0, 0).volume();
        for ring in 1..=4u32 {
            for seg in 0..(1u64 << ring) {
                total += g.cell(ring, seg).volume();
            }
        }
        assert!((total - 4.0 / 3.0 * core::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn cells_tile_each_ring() {
        // Every point of a shell belongs to exactly one cell of its ring.
        let g = SphereGrid3::new(4, 1.0);
        for ring in 1..=4u32 {
            let r = 0.5 * (g.shell_radius(ring - 1) + g.shell_radius(ring));
            for i in 0..16 {
                for j in 0..16 {
                    let p = SphericalPoint::new(
                        r,
                        (i as f64 + 0.5) / 16.0 * TAU,
                        -1.0 + (j as f64 + 0.5) / 8.0,
                    );
                    let containing = (0..(1u64 << ring))
                        .filter(|&s| g.cell(ring, s).contains(&p))
                        .count();
                    assert_eq!(containing, 1, "ring {ring}, point {p:?}");
                }
            }
        }
    }

    #[test]
    fn cell_of_agrees_with_containment() {
        let g = SphereGrid3::new(5, 1.0);
        for i in 0..20 {
            for j in 0..10 {
                for m in 0..10 {
                    let p = SphericalPoint::new(
                        (i as f64 + 0.5) / 20.0,
                        (j as f64 + 0.5) / 10.0 * TAU,
                        -1.0 + (m as f64 + 0.5) / 5.0,
                    );
                    let (ring, seg) = g.cell_of(&p);
                    assert!(
                        g.cell(ring, seg).contains(&p),
                        "point {p:?} -> ({ring},{seg})"
                    );
                }
            }
        }
    }

    #[test]
    fn angular_path_is_prefix_stable() {
        // The segment at ring m must be the top m bits of the path.
        let g = SphereGrid3::new(6, 1.0);
        let p = SphericalPoint::new(0.99, 2.1, -0.4);
        let path = g.angular_path(&p);
        for ring in 1..=6u32 {
            let seg = path >> (6 - ring);
            let (t_lo, t_hi, z_lo, z_hi) = SphereGrid3::angular_box(ring, seg);
            assert!(t_lo <= p.azimuth && p.azimuth < t_hi, "ring {ring} azimuth");
            assert!(z_lo <= p.cos_polar && p.cos_polar < z_hi, "ring {ring} z");
        }
    }

    #[test]
    fn parent_child_alignment() {
        let g = SphereGrid3::new(3, 1.0);
        for ring in 1..=3u32 {
            for seg in 0..(1u64 << ring) {
                let (pr, ps) = g.parent(ring, seg).unwrap();
                assert!(g.children(pr, ps).unwrap().contains(&(ring, seg)));
            }
        }
        // Children's angular boxes partition the parent's.
        for ring in 1..3u32 {
            for seg in 0..(1u64 << ring) {
                let parent = g.cell(ring, seg);
                let kids = g.children(ring, seg).unwrap();
                let v: f64 = kids
                    .iter()
                    .map(|&(r, s)| {
                        let c = g.cell(r, s);
                        c.solid_angle()
                    })
                    .sum();
                assert!((v - parent.solid_angle()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ring_of_radius_boundaries() {
        let g = SphereGrid3::new(6, 1.0);
        for i in 0..6u32 {
            let r = g.shell_radius(i);
            assert_eq!(g.ring_of_radius(r), i + 1, "on shell {i}");
            if i > 0 {
                assert_eq!(g.ring_of_radius(r * (1.0 - 1e-12)), i);
            }
        }
        assert_eq!(g.ring_of_radius(0.0), 0);
        assert_eq!(g.ring_of_radius(99.0), 6);
    }

    #[test]
    fn max_angular_diameter_decreases() {
        let g = SphereGrid3::new(8, 1.0);
        // Must decrease roughly like 2^(-i/6); just check overall decrease
        // over two-level strides (θ and z alternate).
        for i in (1..7u32).step_by(2) {
            assert!(
                g.max_angular_diameter(i) > g.max_angular_diameter(i + 2),
                "ring {i}"
            );
        }
        assert!(g.max_angular_diameter(0) >= g.max_angular_diameter(1));
    }

    #[test]
    fn poles_and_seam_points_are_located() {
        let g = SphereGrid3::new(5, 1.0);
        let pole = SphericalPoint::new(0.9, 0.0, 1.0);
        let (ring, seg) = g.cell_of(&pole);
        assert!(g.cell(ring, seg).contains(&pole));
        let seam = SphericalPoint::new(0.9, TAU - 1e-12, -1.0);
        let (ring, seg) = g.cell_of(&seam);
        assert!(g.cell(ring, seg).contains(&seam));
    }
}
