//! A std-only benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically offline, so the external `criterion`
//! crate is replaced by this `Instant`-based harness. It keeps the subset
//! of the API the benches use — groups, `BenchmarkId`, `Throughput`,
//! `bench_with_input`/`bench_function`, `Bencher::iter` — and emits one
//! `BENCH_<group>.json` per group (the same shape the repository's
//! `BENCH_*.json` trajectory files use), plus a human-readable line per
//! benchmark on stdout.
//!
//! Timing model: per benchmark, the median of three warm-up calls
//! calibrates an iteration count targeting ~50 ms per
//! sample (a single call is hostage to first-call allocation and
//! page-fault spikes), then `sample_size` samples are measured and
//! summarized (mean/median/min/max/stddev). `--quick` runs one warm-up
//! and one iteration.
//!
//! Runner flags (cargo passes these through):
//! - `--test` / `--quick`: one sample, one iteration — CI smoke mode.
//! - any bare argument: substring filter on `group/id`.
//! - `OMT_BENCH_DIR`: output directory (default `target/omt-bench`).

use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

/// Per-sample time budget the calibration aims for, in nanoseconds.
const TARGET_SAMPLE_NANOS: f64 = 50_000_000.0;

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
///
/// This is the high-water mark since process start or since the last
/// [`reset_peak_rss`], so measured around a benchmark it bounds the
/// benchmark's true peak from above — exactly the number Table I's
/// million-scale rows need.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the peak-RSS high-water mark (`echo 5 > /proc/self/clear_refs`)
/// so the next [`peak_rss_bytes`] reflects only subsequent allocations.
/// Best-effort: silently a no-op where the kernel does not support it, in
/// which case the reported peak is the process-lifetime high-water mark
/// (still an upper bound).
pub fn reset_peak_rss() {
    let _ = fs::write("/proc/self/clear_refs", "5");
}

/// How work is counted for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, `function/parameter` style.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

/// Summary statistics of one benchmark.
#[derive(Clone, Debug)]
struct BenchStats {
    id: String,
    samples: usize,
    iters_per_sample: u64,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    stddev_ns: f64,
    throughput: Option<Throughput>,
    /// Peak resident set size observed across this benchmark's runs, in
    /// bytes; `None` where procfs is unavailable.
    peak_rss_bytes: Option<u64>,
    /// Compact JSON snapshot of the metrics this benchmark recorded,
    /// present only when `OMT_TRACE` recording is on.
    metrics: Option<String>,
}

impl BenchStats {
    fn per_second(&self) -> Option<f64> {
        let count = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        (self.mean_ns > 0.0).then(|| count as f64 / (self.mean_ns * 1e-9))
    }
}

/// Measures the closure handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    quick: bool,
    stats: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Time `f`, running it enough times per sample to fill the per-sample
    /// budget. The last measurement wins if called twice (criterion forbids
    /// that; the benches here never do it).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up doubles as calibration. A single invocation is fragile:
        // a first-call allocation or page-fault spike inflates the
        // estimate, collapsing `iters` to 1 and ruining sample quality —
        // so calibrate from the median of three invocations (`--quick`
        // keeps one warm-up and one iteration: it is a smoke mode).
        let iters = if self.quick {
            let _keep = std::hint::black_box(f());
            1
        } else {
            let mut warm = [0.0f64; 3];
            for w in &mut warm {
                let t0 = Instant::now();
                let _keep = std::hint::black_box(f());
                *w = t0.elapsed().as_nanos() as f64;
            }
            warm.sort_by(f64::total_cmp);
            (TARGET_SAMPLE_NANOS / warm[1].max(1.0))
                .clamp(1.0, 1_000_000.0)
                .round() as u64
        };
        let samples = if self.quick { 1 } else { self.sample_size };

        let mut per_iter = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                let _keep = std::hint::black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some((per_iter, iters));
    }
}

/// A named group of benchmarks sharing configuration; results are written
/// on [`finish`](BenchmarkGroup::finish).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchStats>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the work count reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            quick: self.criterion.quick,
            stats: None,
        };
        // Isolate this benchmark's metric snapshot: park whatever the
        // thread accumulated so far, run, harvest the delta, then put
        // both back. All no-ops when recording is off.
        let parked = omt_obs::take_local();
        reset_peak_rss();
        f(&mut bencher);
        let peak_rss = peak_rss_bytes();
        let recorded = omt_obs::take_local();
        let metrics = (!recorded.is_empty()).then(|| recorded.to_json());
        omt_obs::merge_into_local(parked);
        omt_obs::merge_into_local(recorded);
        let Some((mut per_iter, iters)) = bencher.stats else {
            eprintln!("{full}: bench closure never called Bencher::iter");
            return;
        };
        per_iter.sort_by(f64::total_cmp);
        let n = per_iter.len() as f64;
        let mean = per_iter.iter().sum::<f64>() / n;
        let median = per_iter[per_iter.len() / 2];
        let var = per_iter
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        let stats = BenchStats {
            id: id.id,
            samples: per_iter.len(),
            iters_per_sample: iters,
            mean_ns: mean,
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            stddev_ns: var.sqrt(),
            throughput: self.throughput,
            peak_rss_bytes: peak_rss,
            metrics,
        };
        let rate = stats
            .per_second()
            .map_or(String::new(), |r| format!("  ({r:.3e}/s)"));
        println!(
            "{full:<40} mean {:>12}  median {:>12}  ±{:>10}{rate}",
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.stddev_ns),
        );
        self.results.push(stats);
    }

    /// Write the group's `BENCH_<group>.json` and print a summary.
    pub fn finish(self) {
        if self.results.is_empty() {
            return;
        }
        let dir = self.criterion.out_dir.clone();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("omt-bench: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"omt-bench/v1\",\n");
        out.push_str(&format!("  \"group\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"quick\": {},\n", self.criterion.quick));
        out.push_str(&format!(
            "  \"threads\": {},\n",
            omt_par::effective_threads()
        ));
        out.push_str("  \"benches\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            let throughput = match s.throughput {
                Some(Throughput::Elements(n)) => format!(", \"elements\": {n}"),
                Some(Throughput::Bytes(n)) => format!(", \"bytes\": {n}"),
                None => String::new(),
            };
            let rate = s
                .per_second()
                .map_or(String::new(), |r| format!(", \"per_second\": {r:.3}"));
            let peak_rss = s
                .peak_rss_bytes
                .map_or(String::new(), |b| format!(", \"peak_rss_bytes\": {b}"));
            let metrics = s
                .metrics
                .as_ref()
                .map_or(String::new(), |m| format!(", \"metrics\": {m}"));
            out.push_str(&format!(
                "    {{\"id\": {}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"max_ns\": {:.1}, \"stddev_ns\": {:.1}{throughput}{rate}{peak_rss}{metrics}}}{}\n",
                json_str(&s.id),
                s.samples,
                s.iters_per_sample,
                s.mean_ns,
                s.median_ns,
                s.min_ns,
                s.max_ns,
                s.stddev_ns,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        if let Err(e) = fs::write(&path, out) {
            eprintln!("omt-bench: cannot write {}: {e}", path.display());
        } else {
            println!("  -> {}", path.display());
        }
    }
}

/// The harness entry point, criterion-style.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            quick: false,
            filter: None,
            out_dir: std::env::var_os("OMT_BENCH_DIR").map_or_else(
                // Anchor on this crate's manifest so the output lands in the
                // workspace target dir regardless of the runner's cwd.
                || PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/omt-bench"),
                PathBuf::from,
            ),
        }
    }
}

impl Criterion {
    /// Configure from the process arguments (`--test`/`--quick` for smoke
    /// mode, a bare argument as substring filter; other flags ignored).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => c.quick = true,
                a if !a.starts_with('-') => c.filter = Some(a.to_string()),
                _ => {}
            }
        }
        c
    }

    /// True when running in `--quick`/`--test` smoke mode. Benches whose
    /// *setup* is expensive (e.g. a million-host prefill) should also
    /// scale that down — the harness only shrinks sampling.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
            results: Vec::new(),
        }
    }

    /// Benchmark a standalone function in an implicit group named after it.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function(id, f);
        group.finish();
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::harness::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}
