//! Figure 7: running time versus n — the near-linear scaling curve,
//! including the paper's inset range (100 .. 10,000).

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::PolarGridBuilder;
use omt_geom::Point2;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    // The inset range plus the main curve up to 1M (5M is reachable with
    // the planetary_swarm example; criterion repetition makes it too slow
    // here).
    for n in [100usize, 1_000, 10_000, 100_000, 1_000_000] {
        let points = disk_points(n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, pts| {
            let builder = PolarGridBuilder::new();
            b.iter(|| builder.build(Point2::ORIGIN, pts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
