//! The scalability argument of the paper's related-work section: the
//! linear-time polar grid against the quadratic heuristics it cites.

use omt_baselines::{BandwidthLatency, GreedyBuilder, GreedyObjective};
use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::PolarGridBuilder;
use omt_geom::Point2;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for n in [500usize, 2_000, 8_000] {
        let points = disk_points(n, 11);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("polar_grid", n), &points, |b, pts| {
            let alg = PolarGridBuilder::new().max_out_degree(6);
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("compact_tree", n), &points, |b, pts| {
            let alg = GreedyBuilder::new(GreedyObjective::MinDelay).max_out_degree(6);
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("greedy_prim", n), &points, |b, pts| {
            let alg = GreedyBuilder::new(GreedyObjective::MinEdge).max_out_degree(6);
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("bandwidth_latency", n),
            &points,
            |b, pts| {
                let alg = BandwidthLatency::uniform(6);
                b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
