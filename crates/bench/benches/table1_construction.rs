//! Table I, "CPU Sec" columns: construction time of the degree-6 and
//! degree-2 polar-grid trees per problem size, plus a thread-count
//! comparison of the parallel per-cell bisection path at the largest
//! size (the emitted JSON records the ambient `threads` setting).

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::PolarGridBuilder;
use omt_geom::Point2;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_construction");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let points = disk_points(n, n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("deg6", n), &points, |b, pts| {
            let builder = PolarGridBuilder::new().max_out_degree(6);
            b.iter(|| builder.build(Point2::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("deg2", n), &points, |b, pts| {
            let builder = PolarGridBuilder::new().max_out_degree(2);
            b.iter(|| builder.build(Point2::ORIGIN, pts).unwrap());
        });
    }
    // Explicit thread-count comparison at the largest size; the parallel
    // path is bit-identical to sequential, so only the timing differs.
    let n = 100_000usize;
    let points = disk_points(n, n as u64);
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4] {
        for (deg, name) in [(6u32, "deg6"), (2, "deg2")] {
            let id = BenchmarkId::new(format!("{name}-t{threads}"), n);
            group.bench_with_input(id, &points, |b, pts| {
                let builder = PolarGridBuilder::new().max_out_degree(deg).threads(threads);
                b.iter(|| builder.build(Point2::ORIGIN, pts).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
