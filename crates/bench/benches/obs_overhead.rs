//! Disabled-path observability guard: times the pinned `polar_grid`
//! build at n = 100k with the `obs` feature **off**.
//!
//! The acceptance bar for the observability layer is that the no-op
//! macros add no measurable cost to the hot construction path. The
//! checked-in artifacts were produced by building this bench against
//! the pre-instrumentation tree (a worktree at the previous commit) and
//! the instrumented tree, then running the two binaries interleaved on
//! the same machine: the adjacent pair recorded in
//! `results/BENCH_obs_overhead_baseline.json` (pre) and
//! `results/BENCH_obs_overhead.json` (post) agrees within 2% on both
//! medians. CI re-runs it in `--quick` mode as a smoke check that the
//! disabled path still builds and runs.

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::PolarGridBuilder;
use omt_geom::Point2;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    let n = 100_000usize;
    let points = disk_points(n, n as u64);
    group.throughput(Throughput::Elements(n as u64));
    for (deg, name) in [(6u32, "deg6"), (2, "deg2")] {
        group.bench_with_input(BenchmarkId::new(name, n), &points, |b, pts| {
            let builder = PolarGridBuilder::new().max_out_degree(deg).threads(1);
            b.iter(|| builder.build(Point2::ORIGIN, pts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
