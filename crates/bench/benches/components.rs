//! Component micro-benchmarks: where the O(n) budget goes (grid locate +
//! k-selection vs. in-cell bisection vs. tree assembly), plus the
//! embedding substrate.

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::{PolarGrid2, PolarGridBuilder};
use omt_geom::{Point2, PolarPoint};
use omt_net::{gnp_embed, DelayMatrix, GnpConfig, WaxmanConfig};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(10);

    // Grid locate: the per-point assignment cost.
    let points = disk_points(100_000, 5);
    let polar: Vec<PolarPoint> = points.iter().map(PolarPoint::from_cartesian).collect();
    let grid = PolarGrid2::new(12, 1.0 + 1e-9);
    group.throughput(Throughput::Elements(polar.len() as u64));
    group.bench_function("grid_locate_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &polar {
                let (r, s) = grid.cell_of(p);
                acc = acc.wrapping_add(u64::from(r)).wrapping_add(s);
            }
            acc
        });
    });

    // Pure bisection (rings = 0) vs. the full pipeline at the same size.
    let pts10k = disk_points(10_000, 6);
    group.throughput(Throughput::Elements(10_000));
    group.bench_with_input(
        BenchmarkId::new("pure_bisection", 10_000),
        &pts10k,
        |b, pts| {
            let alg = PolarGridBuilder::new().rings(0);
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_pipeline", 10_000),
        &pts10k,
        |b, pts| {
            let alg = PolarGridBuilder::new();
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        },
    );

    // GNP embedding of 60 hosts on a 150-router underlay.
    let mut rng = SmallRng::seed_from_u64(9);
    let underlay = WaxmanConfig {
        routers: 150,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    let hosts: Vec<usize> = (0..60).collect();
    let delays = DelayMatrix::from_graph(&underlay, &hosts);
    group.throughput(Throughput::Elements(60));
    group.bench_function("gnp_embed_60_hosts", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(10);
            gnp_embed::<3>(&delays, &GnpConfig::default(), &mut rng)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
