//! Hierarchical capacity-summary index benchmarks: the same churn and
//! parent-query workloads through the per-cell linear scans and through
//! `omt-geom::hgrid`, on overlays prefilled up to n = 1M live hosts
//! (`--quick` shrinks the prefill to 20k).
//!
//! Both paths return bit-identical answers (proven by the
//! `hgrid_parity` differential suite); only the work per answer is at
//! stake. Besides wall time, each configuration's parent-search probe
//! counters (open-list consultations and attach-cost evaluations) are
//! measured outside the timed region and printed, so the query-count
//! columns of `results/hgrid.md` regenerate from the same run. Record
//! with:
//!
//! ```sh
//! OMT_BENCH_DIR=results cargo bench -p omt-bench --bench hgrid -- hgrid
//! ```

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::{DynamicOverlay, HostId};
use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};

/// A resolved churn plan (joins : leaves ≈ 2 : 1) whose leave victims are
/// valid on any replay of the same prefilled base.
enum Event {
    Join(Point2),
    Leave(u64),
}

fn event_plan(events: usize, seed: u64) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            if rng.random::<f64>() < 2.0 / 3.0 {
                let r = rng.random::<f64>().sqrt();
                let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
                Event::Join(Point2::new([r * t.cos(), r * t.sin()]))
            } else {
                Event::Leave(rng.random::<u64>())
            }
        })
        .collect()
}

fn run_plan(base: &DynamicOverlay, live: &[HostId], plan: &[Event]) -> usize {
    let mut overlay = base.clone();
    let mut live = live.to_vec();
    for ev in plan {
        match *ev {
            Event::Join(p) => live.push(overlay.join(p)),
            Event::Leave(r) => {
                let i = (r as usize) % live.len();
                overlay.leave(live.swap_remove(i)).unwrap();
            }
        }
    }
    overlay.len()
}

/// Uniform probe points for the read-only parent-query bench (the
/// repair/rejoin shape: "where would this position attach right now?").
fn probe_points(queries: usize, seed: u64) -> Vec<Point2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..queries)
        .map(|_| {
            let r = rng.random::<f64>().sqrt();
            let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
            Point2::new([r * t.cos(), r * t.sin()])
        })
        .collect()
}

fn run_queries(overlay: &DynamicOverlay, probes: &[Point2]) -> usize {
    probes
        .iter()
        .filter(|p| overlay.peek_parent(p).is_some())
        .count()
}

/// Left-half-plane probe points for the repair bench: rejoin searches
/// aimed into the region a mass departure just emptied, where the scan
/// walks chains of empty cells the index rules out by count alone.
fn outage_probe_points(queries: usize, seed: u64) -> Vec<Point2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    std::iter::from_fn(|| {
        let r = rng.random::<f64>().sqrt();
        let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
        Some(Point2::new([r * t.cos(), r * t.sin()]))
    })
    .filter(|p| p.coords()[0] < 0.0)
    .take(queries)
    .collect()
}

/// Evicts every host in the left half-plane, emptying that region's
/// cells (the regional-outage setup for the repair bench).
fn regional_outage(overlay: &mut DynamicOverlay, live: &[HostId], pts: &[Point2]) {
    for (i, &id) in live.iter().enumerate() {
        if pts[i].coords()[0] < 0.0 {
            overlay.leave(id).unwrap();
        }
    }
}

/// Replays the churn plan once outside the timed region and returns the
/// working overlay's parent-search probe counters.
fn plan_probes(base: &DynamicOverlay, live: &[HostId], plan: &[Event]) -> (u64, u64) {
    let mut overlay = base.clone();
    overlay.reset_search_probes();
    let mut live = live.to_vec();
    for ev in plan {
        match *ev {
            Event::Join(p) => live.push(overlay.join(p)),
            Event::Leave(r) => {
                let i = (r as usize) % live.len();
                overlay.leave(live.swap_remove(i)).unwrap();
            }
        }
    }
    overlay.search_probes()
}

/// Prints one workload's work counters — the query-count columns of
/// `results/hgrid.md`.
fn report_probes(label: &str, n: usize, (cells, costs): (u64, u64)) {
    println!("hgrid-probes/{label}/{n}: cells_scanned={cells} cost_probes={costs}");
}

fn bench_hgrid(c: &mut Criterion) {
    let quick = c.is_quick();
    let (n, events, queries) = if quick {
        (20_000usize, 4_000usize, 4_000usize)
    } else {
        (1_000_000, 50_000, 50_000)
    };
    let mut group = c.benchmark_group("hgrid");
    group.sample_size(5);

    // One prefill; both bases are fresh clones of it (identical, compact
    // allocations — the incrementally-grown original would hand whichever
    // side kept it a cache-locality handicap), and the indexed one builds
    // its summaries once from the same membership.
    let mut prefill = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
    prefill.set_hgrid(false);
    let pts = disk_points(n, 29);
    let live: Vec<HostId> = pts.iter().map(|&p| prefill.join(p)).collect();
    let scan_base = prefill.clone();
    let mut indexed_base = prefill.clone();
    indexed_base.set_hgrid(true);
    drop(prefill);

    let plan = event_plan(events, 31 + n as u64);
    group.throughput(Throughput::Elements(events as u64));
    group.bench_with_input(BenchmarkId::new("churn-scan", n), &plan, |b, plan| {
        b.iter(|| run_plan(&scan_base, &live, plan));
    });
    group.bench_with_input(BenchmarkId::new("churn-indexed", n), &plan, |b, plan| {
        b.iter(|| run_plan(&indexed_base, &live, plan));
    });
    report_probes("churn-scan", n, plan_probes(&scan_base, &live, &plan));
    report_probes("churn-indexed", n, plan_probes(&indexed_base, &live, &plan));

    let probes = probe_points(queries, 37 + n as u64);
    group.throughput(Throughput::Elements(queries as u64));
    group.bench_with_input(BenchmarkId::new("query-scan", n), &probes, |b, probes| {
        b.iter(|| run_queries(&scan_base, probes));
    });
    group.bench_with_input(
        BenchmarkId::new("query-indexed", n),
        &probes,
        |b, probes| {
            b.iter(|| run_queries(&indexed_base, probes));
        },
    );
    scan_base.reset_search_probes();
    run_queries(&scan_base, &probes);
    report_probes("query-scan", n, scan_base.search_probes());
    indexed_base.reset_search_probes();
    run_queries(&indexed_base, &probes);
    report_probes("query-indexed", n, indexed_base.search_probes());

    // Repair: a regional outage empties the left half-plane, then rejoin
    // searches probe into it. The scan walks the emptied chain cells one
    // by one; the index's zero counts rule them out without a visit.
    let mut repair_scan = scan_base;
    regional_outage(&mut repair_scan, &live, &pts);
    let mut repair_indexed = indexed_base;
    regional_outage(&mut repair_indexed, &live, &pts);
    let outage_probes = outage_probe_points(queries, 41 + n as u64);
    group.throughput(Throughput::Elements(queries as u64));
    group.bench_with_input(
        BenchmarkId::new("repair-scan", n),
        &outage_probes,
        |b, probes| {
            b.iter(|| run_queries(&repair_scan, probes));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("repair-indexed", n),
        &outage_probes,
        |b, probes| {
            b.iter(|| run_queries(&repair_indexed, probes));
        },
    );
    repair_scan.reset_search_probes();
    run_queries(&repair_scan, &outage_probes);
    report_probes("repair-scan", n, repair_scan.search_probes());
    repair_indexed.reset_search_probes();
    run_queries(&repair_indexed, &outage_probes);
    report_probes("repair-indexed", n, repair_indexed.search_probes());
    group.finish();
}

criterion_group!(benches, bench_hgrid);
criterion_main!(benches);
