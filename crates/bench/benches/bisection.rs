//! Section II standalone: the constant-factor bisection algorithm at both
//! degree settings.

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::Bisection;
use omt_geom::Point2;

fn bench_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisection");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let points = disk_points(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("deg4", n), &points, |b, pts| {
            let alg = Bisection::new(4).unwrap();
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("deg2", n), &points, |b, pts| {
            let alg = Bisection::new(2).unwrap();
            b.iter(|| alg.build(Point2::ORIGIN, pts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bisection);
criterion_main!(benches);
