//! Dynamic membership benchmarks: join throughput, churn maintenance, and
//! the dissemination simulator's cost.
//!
//! The `dynamic_churn` group records the before/after event throughput of
//! the incremental `DynamicOverlay` maintenance (cached delays, open-host
//! index, source out-degree counter) against the pre-change implementation
//! (kept below as [`naive`]), replaying the *same* seeded event trace
//! (joins : leaves ≈ 2 : 1) on both at target sizes n ∈ {2k, 20k}.
//!
//! The same group also records *sustained* throughput at million scale:
//! a mixed 2 : 1 stream plus flash-crowd and mass-disconnect bursts over
//! an overlay prefilled to n = 1M live hosts, on the per-event path and
//! on `ShardedOverlay::apply_batch` at 1/2/4/8 shards (`--quick` shrinks
//! the prefill to 20k). Record it into the tracked results with:
//!
//! ```sh
//! OMT_BENCH_DIR=results cargo bench -p omt-bench --bench dynamic_churn -- dynamic_churn
//! ```

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::{ChurnEvent, DynamicOverlay, HostId, PolarGridBuilder, ShardedOverlay};
use omt_geom::Point2;
use omt_rng::rngs::SmallRng;
use omt_rng::{RngExt, SeedableRng};
use omt_sim::{simulate, SimConfig};

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let points = disk_points(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("join_all", n), &points, |b, pts| {
            b.iter(|| {
                let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
                for &p in pts {
                    overlay.join(p);
                }
                overlay.len()
            });
        });
    }
    // Simulation throughput over a 100k-node tree.
    let points = disk_points(100_000, 4);
    let tree = PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap();
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("simulate_100k", |b| {
        let cfg = SimConfig {
            serialization_delay: 0.001,
            ..SimConfig::default()
        };
        b.iter(|| simulate(&tree, &cfg).makespan);
    });
    group.finish();
}

/// One membership event of a pre-generated churn trace. Leave victims are
/// picked by reducing a random word modulo the current live count, so the
/// identical trace replays on both implementations.
#[derive(Clone, Copy)]
enum Event {
    Join(Point2),
    Leave(u64),
}

/// A seeded trace with joins : leaves ≈ 2 : 1.
fn event_plan(events: usize, seed: u64) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            if rng.random::<f64>() < 2.0 / 3.0 {
                let r = rng.random::<f64>().sqrt();
                let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
                Event::Join(Point2::new([r * t.cos(), r * t.sin()]))
            } else {
                Event::Leave(rng.random::<u64>())
            }
        })
        .collect()
}

fn run_current(base: &DynamicOverlay, live: &[HostId], plan: &[Event]) -> usize {
    let mut overlay = base.clone();
    let mut live = live.to_vec();
    for ev in plan {
        match *ev {
            Event::Join(p) => live.push(overlay.join(p)),
            Event::Leave(r) => {
                let i = (r as usize) % live.len();
                overlay.leave(live.swap_remove(i)).unwrap();
            }
        }
    }
    overlay.len()
}

fn run_naive(base: &naive::NaiveOverlay, live: &[u64], plan: &[Event]) -> usize {
    let mut overlay = base.clone();
    let mut live = live.to_vec();
    for ev in plan {
        match *ev {
            Event::Join(p) => live.push(overlay.join(p)),
            Event::Leave(r) => {
                let i = (r as usize) % live.len();
                overlay.leave(live.swap_remove(i));
            }
        }
    }
    live.len()
}

/// A concrete, fully-resolved event stream for the sustained benches.
/// Leave victims are picked against a simulated replay of the prefilled
/// overlay, so the resulting `ChurnEvent` list (with real `HostId`s)
/// replays verbatim on the per-event path *and* on `apply_batch` — host
/// ids are deterministic either way (monotone in join order).
fn mixed_plan(base: &DynamicOverlay, live: &[HostId], events: usize, seed: u64) -> Vec<ChurnEvent> {
    let mut sim = base.clone();
    let mut live = live.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            if rng.random::<f64>() < 2.0 / 3.0 {
                let r = rng.random::<f64>().sqrt();
                let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
                let p = Point2::new([r * t.cos(), r * t.sin()]);
                live.push(sim.join(p));
                ChurnEvent::Join(p)
            } else {
                let i = rng.random_range(0..live.len());
                let id = live.swap_remove(i);
                sim.leave(id).expect("victim is live");
                ChurnEvent::Leave(id)
            }
        })
        .collect()
}

/// Flash crowd: a pure join burst.
fn flash_plan(events: usize, seed: u64) -> Vec<ChurnEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            let r = rng.random::<f64>().sqrt();
            let t: f64 = rng.random_range(0.0..core::f64::consts::TAU);
            ChurnEvent::Join(Point2::new([r * t.cos(), r * t.sin()]))
        })
        .collect()
}

/// Mass disconnect: distinct prefill hosts leaving back-to-back.
fn mass_plan(live: &[HostId], events: usize, seed: u64) -> Vec<ChurnEvent> {
    let mut pool = live.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..events.min(pool.len()))
        .map(|_| {
            let i = rng.random_range(0..pool.len());
            ChurnEvent::Leave(pool.swap_remove(i))
        })
        .collect()
}

/// Per-event replay of a resolved plan.
fn run_resolved(base: &DynamicOverlay, plan: &[ChurnEvent]) -> usize {
    let mut overlay = base.clone();
    for ev in plan {
        match *ev {
            ChurnEvent::Join(p) => {
                overlay.join(p);
            }
            ChurnEvent::Leave(id) => overlay.leave(id).expect("victim is live"),
        }
    }
    overlay.len()
}

/// Batched replay of the same plan through the sharded engine.
fn run_batched(base: &DynamicOverlay, shards: u32, plan: &[ChurnEvent], batch: usize) -> usize {
    let mut overlay = ShardedOverlay::from_overlay(base.clone(), shards).expect("power of two");
    for chunk in plan.chunks(batch) {
        overlay.apply_batch(chunk).expect("victims are live");
    }
    overlay.len()
}

fn bench_churn(c: &mut Criterion) {
    // Both bench sections must share this one group instance: two groups
    // with the same name would each write (and so overwrite) the same
    // BENCH_dynamic_churn.json on finish().
    let quick = c.is_quick();
    let mut group = c.benchmark_group("dynamic_churn");
    group.sample_size(10);
    for n in [2_000usize, 20_000] {
        let events = n / 2;
        let prefill = disk_points(n, 7);
        let plan = event_plan(events, 11 + n as u64);
        // Prefill both implementations once; every sample replays the same
        // trace on a clone of the prefilled overlay.
        let mut base_current = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
        let live_current: Vec<HostId> = prefill.iter().map(|&p| base_current.join(p)).collect();
        let mut base_naive = naive::NaiveOverlay::new(Point2::ORIGIN, 6);
        let live_naive: Vec<u64> = prefill.iter().map(|&p| base_naive.join(p)).collect();
        group.throughput(Throughput::Elements(events as u64));
        group.bench_with_input(BenchmarkId::new("events", n), &plan, |b, plan| {
            b.iter(|| run_current(&base_current, &live_current, plan));
        });
        group.bench_with_input(BenchmarkId::new("events_naive", n), &plan, |b, plan| {
            b.iter(|| run_naive(&base_naive, &live_naive, plan));
        });
    }

    // Sustained throughput at million scale: events/s over a live overlay
    // of n = 1M hosts (`--quick`: 20k), mixed 2 : 1 join : leave, plus the
    // two stress scenarios (flash crowd, mass disconnect), on the
    // per-event path and on the sharded batch engine at 1/2/4/8 shards.
    // Every iteration clones the prefilled base on both paths, so the
    // comparison stays symmetric; peak RSS is recorded per row by the
    // harness. The batch engine's output is bit-identical to the
    // per-event path (proven in omt-core's churn_fuzz suite) — only
    // throughput is at stake here.
    let (n, events) = if quick {
        (20_000usize, 4_000usize)
    } else {
        (1_000_000, 100_000)
    };
    let batch = 512usize;
    let mut base = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
    let live: Vec<HostId> = disk_points(n, 13).iter().map(|&p| base.join(p)).collect();
    group.sample_size(5);
    group.throughput(Throughput::Elements(events as u64));

    let sustained = mixed_plan(&base, &live, events, 17 + n as u64);
    group.bench_with_input(BenchmarkId::new("sustained", n), &sustained, |b, plan| {
        b.iter(|| run_resolved(&base, plan));
    });
    for shards in [1u32, 2, 4, 8] {
        let id = BenchmarkId::new(format!("sustained-sharded{shards}"), n);
        group.bench_with_input(id, &sustained, |b, plan| {
            b.iter(|| run_batched(&base, shards, plan, batch));
        });
    }

    let flash = flash_plan(events, 19 + n as u64);
    group.bench_with_input(BenchmarkId::new("flash_crowd", n), &flash, |b, plan| {
        b.iter(|| run_resolved(&base, plan));
    });
    group.bench_with_input(
        BenchmarkId::new("flash_crowd-sharded4", n),
        &flash,
        |b, plan| {
            b.iter(|| run_batched(&base, 4, plan, batch));
        },
    );

    let mass = mass_plan(&live, events, 23 + n as u64);
    group.bench_with_input(BenchmarkId::new("mass_disconnect", n), &mass, |b, plan| {
        b.iter(|| run_resolved(&base, plan));
    });
    group.bench_with_input(
        BenchmarkId::new("mass_disconnect-sharded4", n),
        &mass,
        |b, plan| {
            b.iter(|| run_batched(&base, 4, plan, batch));
        },
    );
    group.finish();
}

/// The pre-change `DynamicOverlay` maintenance code, preserved as the
/// baseline of the before/after comparison so both sides of
/// `BENCH_dynamic_churn.json` regenerate in one run on the same machine.
/// Join/leave/rebuild logic is copied from the old implementation
/// (O(n)-scan `slot_of`/`source_child_count`, `delay_of` parent walks
/// inside the comparators, no open-host index); the snapshot/validation
/// surface is dropped since the bench never calls it.
mod naive {
    use omt_core::{PolarGrid2, PolarGridBuilder};
    use omt_geom::{Point2, PolarPoint};
    use omt_tree::ParentRef;

    #[derive(Clone, Debug)]
    struct Host {
        position: Point2,
        parent: Option<u64>,
        children: Vec<u64>,
        alive: bool,
        id: u64,
    }

    #[derive(Clone, Debug)]
    pub struct NaiveOverlay {
        source: Point2,
        max_out_degree: u32,
        hosts: Vec<Host>,
        cell_members: Vec<Vec<u64>>,
        grid: Option<PolarGrid2>,
        live: usize,
        churn_since_rebuild: usize,
        next_id: u64,
    }

    impl NaiveOverlay {
        pub fn new(source: Point2, max_out_degree: u32) -> Self {
            assert!(max_out_degree >= 2 && source.is_finite());
            Self {
                source,
                max_out_degree,
                hosts: Vec::new(),
                cell_members: vec![Vec::new()],
                grid: None,
                live: 0,
                churn_since_rebuild: 0,
                next_id: 0,
            }
        }

        fn slot_of(&self, id: u64) -> Option<usize> {
            self.hosts.iter().position(|h| h.alive && h.id == id)
        }

        fn out_degree(&self, slot: usize) -> u32 {
            self.hosts[slot].children.len() as u32
        }

        fn source_child_count(&self) -> usize {
            self.hosts
                .iter()
                .filter(|h| h.alive && h.parent.is_none())
                .count()
        }

        fn delay_of(&self, slot: usize) -> f64 {
            let mut d = 0.0;
            let mut cur = slot;
            loop {
                match self.hosts[cur].parent {
                    None => {
                        d += self.hosts[cur].position.distance(&self.source);
                        break;
                    }
                    Some(p) => {
                        d += self.hosts[cur]
                            .position
                            .distance(&self.hosts[p as usize].position);
                        cur = p as usize;
                    }
                }
            }
            d
        }

        fn cell_of(&self, p: &Point2) -> usize {
            match &self.grid {
                None => 0,
                Some(grid) => {
                    let polar = PolarPoint::from_cartesian(&(*p - self.source));
                    let (ring, seg) = grid.cell_of(&polar);
                    ((1u64 << ring) - 1 + seg) as usize
                }
            }
        }

        pub fn join(&mut self, position: Point2) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            let slot = self.hosts.len() as u64;
            let parent = self.find_parent_for(&position);
            self.hosts.push(Host {
                position,
                parent,
                children: Vec::new(),
                alive: true,
                id,
            });
            if let Some(p) = parent {
                self.hosts[p as usize].children.push(slot);
            }
            let cell = self.cell_of(&position);
            self.cell_members[cell].push(slot);
            self.live += 1;
            self.churn_since_rebuild += 1;
            self.maybe_rebuild();
            id
        }

        fn find_parent_for(&self, position: &Point2) -> Option<u64> {
            let source_open = self.source_child_count() < self.max_out_degree as usize;
            let mut cell = self.cell_of(position);
            loop {
                let best = self.cell_members[cell]
                    .iter()
                    .copied()
                    .filter(|&s| {
                        self.hosts[s as usize].alive
                            && self.out_degree(s as usize) < self.max_out_degree
                    })
                    .min_by(|&a, &b| {
                        let da = self.delay_of(a as usize)
                            + self.hosts[a as usize].position.distance(position);
                        let db = self.delay_of(b as usize)
                            + self.hosts[b as usize].position.distance(position);
                        da.total_cmp(&db)
                    });
                if let Some(p) = best {
                    return Some(p);
                }
                if cell == 0 {
                    break;
                }
                let (ring, seg) = unflatten(cell);
                cell = if ring <= 1 {
                    0
                } else {
                    ((1u64 << (ring - 1)) - 1 + seg / 2) as usize
                };
            }
            if source_open {
                return None;
            }
            (0..self.hosts.len())
                .filter(|&s| self.hosts[s].alive && self.out_degree(s) < self.max_out_degree)
                .min_by(|&a, &b| {
                    let da = self.delay_of(a) + self.hosts[a].position.distance(position);
                    let db = self.delay_of(b) + self.hosts[b].position.distance(position);
                    da.total_cmp(&db)
                })
                .map(|s| s as u64)
        }

        pub fn leave(&mut self, id: u64) {
            let slot = self.slot_of(id).expect("live id");
            if let Some(p) = self.hosts[slot].parent {
                let p = p as usize;
                self.hosts[p].children.retain(|&c| c != slot as u64);
            }
            let children = std::mem::take(&mut self.hosts[slot].children);
            self.hosts[slot].alive = false;
            let cell = self.cell_of(&self.hosts[slot].position.clone());
            self.cell_members[cell].retain(|&s| s != slot as u64);
            self.live -= 1;
            if !children.is_empty() {
                let vacated_parent = self.hosts[slot].parent;
                let promoted = *children
                    .iter()
                    .min_by(|&&a, &&b| {
                        let da = self.hosts[a as usize]
                            .position
                            .distance(&self.hosts[slot].position);
                        let db = self.hosts[b as usize]
                            .position
                            .distance(&self.hosts[slot].position);
                        da.total_cmp(&db)
                    })
                    .expect("nonempty");
                self.hosts[promoted as usize].parent = vacated_parent;
                if let Some(p) = vacated_parent {
                    self.hosts[p as usize].children.push(promoted);
                }
                for c in children {
                    if c == promoted {
                        continue;
                    }
                    self.hosts[c as usize].parent = None;
                    let pos = self.hosts[c as usize].position;
                    let parent = self.find_parent_for_excluding(&pos, c);
                    self.hosts[c as usize].parent = parent;
                    if let Some(p) = parent {
                        self.hosts[p as usize].children.push(c);
                    }
                }
            }
            self.churn_since_rebuild += 1;
            self.maybe_rebuild();
        }

        fn find_parent_for_excluding(&self, position: &Point2, banned: u64) -> Option<u64> {
            let in_banned_subtree = |mut s: u64| -> bool {
                let mut hops = 0;
                loop {
                    if s == banned {
                        return true;
                    }
                    match self.hosts[s as usize].parent {
                        None => return false,
                        Some(p) => s = p,
                    }
                    hops += 1;
                    if hops > self.hosts.len() {
                        return true;
                    }
                }
            };
            let source_open = self.source_child_count() < self.max_out_degree as usize;
            let candidate = (0..self.hosts.len())
                .filter(|&s| {
                    self.hosts[s].alive
                        && self.out_degree(s) < self.max_out_degree
                        && !in_banned_subtree(s as u64)
                })
                .min_by(|&a, &b| {
                    let da = self.delay_of(a) + self.hosts[a].position.distance(position);
                    let db = self.delay_of(b) + self.hosts[b].position.distance(position);
                    da.total_cmp(&db)
                });
            match candidate {
                Some(s) => {
                    if source_open {
                        let direct = self.source.distance(position);
                        let via = self.delay_of(s) + self.hosts[s].position.distance(position);
                        if direct <= via {
                            return None;
                        }
                    }
                    Some(s as u64)
                }
                None => None,
            }
        }

        fn maybe_rebuild(&mut self) {
            if self.churn_since_rebuild * 2 <= self.live.max(8) {
                return;
            }
            self.rebuild();
        }

        fn rebuild(&mut self) {
            self.churn_since_rebuild = 0;
            let live_slots: Vec<usize> = (0..self.hosts.len())
                .filter(|&s| self.hosts[s].alive)
                .collect();
            let positions: Vec<Point2> =
                live_slots.iter().map(|&s| self.hosts[s].position).collect();
            if positions.is_empty() {
                self.hosts.clear();
                self.cell_members = vec![Vec::new()];
                self.grid = None;
                return;
            }
            let (tree, report) = PolarGridBuilder::new()
                .max_out_degree(self.max_out_degree)
                .build_with_report(self.source, &positions)
                .expect("live positions are finite");
            let mut new_hosts: Vec<Host> = Vec::with_capacity(positions.len());
            for (i, &old) in live_slots.iter().enumerate() {
                new_hosts.push(Host {
                    position: positions[i],
                    parent: match tree.parent(i) {
                        ParentRef::Source => None,
                        ParentRef::Node(p) => Some(p as u64),
                    },
                    children: tree.children(i).iter().map(|&c| u64::from(c)).collect(),
                    alive: true,
                    id: self.hosts[old].id,
                });
            }
            self.hosts = new_hosts;
            let grid = PolarGrid2::new(report.rings, {
                let rho = positions
                    .iter()
                    .map(|p| p.distance(&self.source))
                    .fold(0.0f64, f64::max);
                if rho > 0.0 {
                    rho * (1.0 + 1e-9)
                } else {
                    1.0
                }
            });
            let mut cell_members = vec![Vec::new(); ((1u64 << (report.rings + 1)) - 1) as usize];
            for (slot, host) in self.hosts.iter().enumerate() {
                let polar = PolarPoint::from_cartesian(&(host.position - self.source));
                let (ring, seg) = grid.cell_of(&polar);
                cell_members[((1u64 << ring) - 1 + seg) as usize].push(slot as u64);
            }
            self.grid = Some(grid);
            self.cell_members = cell_members;
        }
    }

    fn unflatten(idx: usize) -> (u32, u64) {
        let v = idx as u64 + 1;
        let ring = 63 - v.leading_zeros();
        (ring, v - (1u64 << ring))
    }
}

criterion_group!(benches, bench_dynamic, bench_churn);
criterion_main!(benches);
