//! Dynamic membership benchmarks: join throughput and churn maintenance,
//! plus the dissemination simulator's cost.

use omt_bench::disk_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::{DynamicOverlay, PolarGridBuilder};
use omt_geom::Point2;
use omt_sim::{simulate, SimConfig};

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let points = disk_points(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("join_all", n), &points, |b, pts| {
            b.iter(|| {
                let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
                for &p in pts {
                    overlay.join(p);
                }
                overlay.len()
            });
        });
    }
    // Simulation throughput over a 100k-node tree.
    let points = disk_points(100_000, 4);
    let tree = PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap();
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("simulate_100k", |b| {
        let cfg = SimConfig {
            serialization_delay: 0.001,
            ..SimConfig::default()
        };
        b.iter(|| simulate(&tree, &cfg).makespan);
    });
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
