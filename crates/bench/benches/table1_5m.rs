//! Table I extended to million scale: construction time and peak RSS of
//! the arena/SoA path (`build_store`) at n ∈ {100k, 1M, 5M}, degree 6 and
//! degree 2, at 1 and 4 worker threads.
//!
//! The store path exists precisely for these sizes: points live in
//! structure-of-arrays columns, the cell partition is one counting sort
//! into a flat index array, and the tree is grown in a preallocated
//! arena — no per-cell or per-node allocation. Every emitted bench row
//! records `peak_rss_bytes` (VmHWM) alongside the timings.
//!
//! The full run takes minutes at n = 5M; `--quick` keeps it CI-sized.

use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::PolarGridBuilder;
use omt_geom::{Disk, Point2, PointStore2};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

/// Deterministic unit-disk workload, sampled straight into the SoA store
/// (chunked: no second full-size copy is ever materialized).
fn disk_store(n: usize, seed: u64) -> PointStore2 {
    let mut rng = SmallRng::seed_from_u64(seed);
    PointStore2::sample_region(Point2::ORIGIN, &Disk::unit(), &mut rng, n)
}

fn bench_table1_5m(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_5m");
    group.sample_size(3);
    for n in [100_000usize, 1_000_000, 5_000_000] {
        let store = disk_store(n, 2004);
        group.throughput(Throughput::Elements(n as u64));
        for threads in [1usize, 4] {
            for (deg, name) in [(6u32, "deg6"), (2, "deg2")] {
                let id = BenchmarkId::new(format!("{name}-t{threads}"), n);
                group.bench_with_input(id, &store, |b, s| {
                    let builder = PolarGridBuilder::new().max_out_degree(deg).threads(threads);
                    b.iter(|| builder.build_store(s).unwrap());
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1_5m);
criterion_main!(benches);
