//! Figure 8 (timing dimension): 3-D unit-sphere construction at out-degree
//! 10 and out-degree 2.

use omt_bench::ball_points;
use omt_bench::harness::{BenchmarkId, Criterion, Throughput};
use omt_bench::{criterion_group, criterion_main};
use omt_core::SphereGridBuilder;
use omt_geom::Point3;

fn bench_sphere(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let points = ball_points(n, n as u64);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("deg10", n), &points, |b, pts| {
            let builder = SphereGridBuilder::new();
            b.iter(|| builder.build(Point3::ORIGIN, pts).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("deg2", n), &points, |b, pts| {
            let builder = SphereGridBuilder::new().max_out_degree(2);
            b.iter(|| builder.build(Point3::ORIGIN, pts).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sphere);
criterion_main!(benches);
