//! Hermetic, dependency-free observability: span timers, counters and
//! log2-bucketed histograms with deterministic merge-at-join semantics.
//!
//! The workspace builds offline with no external crates, so this layer
//! replaces `tracing`/`metrics` with a few hundred lines of std. It is
//! designed around three constraints:
//!
//! 1. **Zero cost when off.** Unless the `enabled` cargo feature is set,
//!    every entry point ([`span`], [`counter`], [`observe`], [`flush`],
//!    [`take_local`], [`merge_into_local`]) is an empty
//!    `#[inline(always)]` function and [`SpanGuard`] is a zero-sized
//!    type without a `Drop` impl — instrumented code optimizes to the
//!    uninstrumented machine code. With the feature on, recording is
//!    additionally gated at runtime on the `OMT_TRACE` environment
//!    variable (one cached lookup, then a branch per event).
//!
//! 2. **Determinism.** Metrics accumulate in a thread-local [`Registry`]
//!    keyed by `&'static str` in `BTreeMap`s. Worker threads harvest
//!    their registry with [`take_local`] and hand it to the spawning
//!    thread, which folds it in with [`merge_into_local`]; because every
//!    merge is commutative and associative (sums, mins, maxes, bucket
//!    adds), the merged registry is identical regardless of thread
//!    scheduling. `omt-par` performs this harvest in worker-index order
//!    at its join point.
//!
//! 3. **Structured output.** [`Registry::to_jsonl`] serializes one JSON
//!    object per line (`span` / `counter` / `hist` records) in
//!    deterministic name order; [`flush`] appends them to the file named
//!    by `OMT_TRACE` (any value other than `0`/`1`/`true`/`mem` is
//!    treated as a path).
//!
//! `OMT_TRACE` values: unset, empty, or `0` — recording off; `1`,
//! `true`, or `mem` — record in memory (callers inspect or flush
//! programmatically); anything else — record and [`flush`] appends JSONL
//! to that path.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..`.
pub const HIST_BUCKETS: usize = 65;

/// Interns a dynamically built metric label, returning a `'static` string
/// usable as a [`span`]/[`counter`]/[`observe`] name.
///
/// Metric names are `&'static str` so the hot-path entry points never
/// allocate or hash strings. Call sites that need a small number of
/// runtime-derived names — per-shard churn counters, per-backend labels —
/// intern them **once at construction time** and store the result; the
/// first interning of each distinct label leaks its allocation
/// (deliberately: the set is expected to stay tiny and live for the
/// process), later calls return the cached pointer.
///
/// Available regardless of the `enabled` feature so call sites need no
/// `cfg`; without the feature the interned name simply feeds no-op sinks.
///
/// # Examples
///
/// ```
/// let a = omt_obs::intern("churn/shard0/fast");
/// let b = omt_obs::intern(&format!("churn/shard{}/fast", 0));
/// assert!(std::ptr::eq(a, b));
/// ```
///
/// # Panics
///
/// Panics if the global intern table's lock is poisoned (a prior panic
/// while interning).
#[must_use]
pub fn intern(label: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = table.lock().expect("intern table poisoned");
    if let Some(&found) = guard.get(label) {
        return found;
    }
    let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Aggregate timing of one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of elapsed nanoseconds.
    pub total_ns: u64,
    /// Shortest observed span, in nanoseconds.
    pub min_ns: u64,
    /// Longest observed span, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds zeros; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k)`. Exact `count` and `sum` ride along so means stay
/// accurate even though individual values are bucketed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise `64 - leading_zeros`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Mean of the exact observed values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper edge of the highest non-empty bucket
    /// (an upper bound on the maximum observation), or 0 when empty.
    pub fn max_bucket_edge(&self) -> u64 {
        for k in (0..HIST_BUCKETS).rev() {
            if self.buckets[k] > 0 {
                return if k == 0 {
                    0
                } else {
                    (1u64 << (k - 1)).saturating_mul(2) - 1
                };
            }
        }
        0
    }

    /// Non-empty `(bucket_index, count)` pairs in ascending order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// A set of named metrics. Keys are `&'static str` and storage is
/// `BTreeMap`, so iteration (and therefore serialization) order is
/// deterministic, and [`Registry::merge`] is commutative and
/// associative.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }

    /// Fold `other` into `self`. Order of merges never changes the
    /// result: all underlying combines are sums / mins / maxes.
    pub fn merge(&mut self, other: &Registry) {
        for (name, stat) in &other.spans {
            self.spans.entry(name).or_default().merge(stat);
        }
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_default() += delta;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name).or_default().merge(hist);
        }
    }

    /// Record one completed span (used by the active [`SpanGuard`]).
    pub fn record_span(&mut self, name: &'static str, ns: u64) {
        self.spans.entry(name).or_default().record(ns);
    }

    /// Add `delta` to a counter.
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_default() += delta;
    }

    /// Record a histogram observation.
    pub fn record_observation(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }

    /// Look up a span's aggregate, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Look up a histogram, if recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All spans in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStat)> + '_ {
        self.spans.iter().map(|(k, v)| (*k, v))
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Serialize the whole registry as one compact JSON object
    /// (`{"spans":{...},"counters":{...},"hists":{...}}`), for embedding
    /// into other JSON documents such as the `BENCH_*.json` files.
    /// Deterministic: names are emitted in `BTreeMap` order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                json_str(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
            );
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_str(name));
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_str(name),
                h.count,
                h.sum,
            );
            for (j, (k, c)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{k},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Serialize every metric as one JSON object per line, in
    /// deterministic (type, then name) order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, s) in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":{},\"count\":{},\"total_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}}}",
                json_str(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
            );
        }
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}",
                json_str(name),
            );
        }
        for (name, h) in &self.hists {
            let mut buckets = String::new();
            for (i, (k, c)) in h.nonzero_buckets().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{k},{c}]");
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\
                 \"buckets\":[{buckets}]}}",
                json_str(name),
                h.count,
                h.sum,
            );
        }
        out
    }
}

/// JSON string literal with the escapes the metric names can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(feature = "enabled")]
mod active {
    use super::Registry;
    use std::cell::RefCell;
    use std::fs::OpenOptions;
    use std::io::Write as _;
    use std::path::PathBuf;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Runtime mode, parsed once from `OMT_TRACE`.
    enum Mode {
        Off,
        Mem,
        File(PathBuf),
    }

    static MODE: OnceLock<Mode> = OnceLock::new();

    fn mode() -> &'static Mode {
        MODE.get_or_init(|| match std::env::var("OMT_TRACE") {
            Err(_) => Mode::Off,
            Ok(v) if v.is_empty() || v == "0" => Mode::Off,
            Ok(v)
                if v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("mem") =>
            {
                Mode::Mem
            }
            Ok(v) => Mode::File(PathBuf::from(v)),
        })
    }

    /// True when the feature is compiled in *and* `OMT_TRACE` enables
    /// recording at runtime.
    pub fn enabled() -> bool {
        !matches!(mode(), Mode::Off)
    }

    /// Force in-memory recording on, unless `OMT_TRACE` was already
    /// consulted (the first decision wins — the mode is process-global).
    /// Returns whether recording is enabled afterwards. Intended for
    /// tests, which cannot rely on the harness exporting `OMT_TRACE`.
    pub fn enable_memory() -> bool {
        !matches!(MODE.get_or_init(|| Mode::Mem), Mode::Off)
    }

    thread_local! {
        static LOCAL: RefCell<Registry> = RefCell::new(Registry::default());
    }

    /// Times a scope: created by [`span`], records elapsed nanoseconds
    /// into the thread-local registry on drop.
    pub struct SpanGuard {
        armed: Option<(&'static str, Instant)>,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((name, start)) = self.armed.take() {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                LOCAL.with(|r| r.borrow_mut().record_span(name, ns));
            }
        }
    }

    /// Start timing a named scope. No-op unless [`enabled`].
    pub fn span(name: &'static str) -> SpanGuard {
        SpanGuard {
            armed: enabled().then(|| (name, Instant::now())),
        }
    }

    /// Add `delta` to a named counter. No-op unless [`enabled`].
    pub fn counter(name: &'static str, delta: u64) {
        if enabled() {
            LOCAL.with(|r| r.borrow_mut().add_counter(name, delta));
        }
    }

    /// Record `value` into a named histogram. No-op unless [`enabled`].
    pub fn observe(name: &'static str, value: u64) {
        if enabled() {
            LOCAL.with(|r| r.borrow_mut().record_observation(name, value));
        }
    }

    /// Take the calling thread's registry, leaving it empty. Worker
    /// threads call this just before finishing so the spawner can
    /// [`merge_into_local`](super::merge_into_local) their metrics.
    pub fn take_local() -> Registry {
        LOCAL.with(|r| std::mem::take(&mut *r.borrow_mut()))
    }

    /// Fold a harvested registry into the calling thread's registry.
    pub fn merge_into_local(other: Registry) {
        if other.is_empty() {
            return;
        }
        LOCAL.with(|r| r.borrow_mut().merge(&other));
    }

    /// Serializes the file-append path so concurrent flushes interleave
    /// whole snapshots, never partial lines.
    static SINK: Mutex<()> = Mutex::new(());

    /// Take the local registry and serialize it as JSONL, prefixed by a
    /// `{"type":"flush","context":...}` header line. When `OMT_TRACE`
    /// names a file, the snapshot is also appended there. Returns the
    /// serialized text, or `None` when recording is off or nothing was
    /// recorded.
    pub fn flush(context: &str) -> Option<String> {
        if !enabled() {
            return None;
        }
        let reg = take_local();
        if reg.is_empty() {
            return None;
        }
        let mut out = format!(
            "{{\"type\":\"flush\",\"context\":{}}}\n",
            super::json_str(context)
        );
        out.push_str(&reg.to_jsonl());
        if let Mode::File(path) = mode() {
            let _guard = SINK
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let write = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(out.as_bytes()));
            if let Err(e) = write {
                eprintln!("omt-obs: cannot append to {}: {e}", path.display());
            }
        }
        Some(out)
    }
}

#[cfg(feature = "enabled")]
pub use active::{
    counter, enable_memory, enabled, flush, merge_into_local, observe, span, take_local, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::Registry;

    /// Zero-sized stand-in for the active span guard; has no `Drop`
    /// impl, so holding one costs nothing.
    pub struct SpanGuard;

    /// Always false: instrumentation is compiled out.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op; returns the zero-sized guard.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// No-op.
    #[inline(always)]
    pub fn counter(_name: &'static str, _delta: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn observe(_name: &'static str, _value: u64) {}

    /// Always returns an empty registry.
    #[inline(always)]
    pub fn take_local() -> Registry {
        Registry::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn merge_into_local(_other: Registry) {}

    /// Always `None`.
    #[inline(always)]
    pub fn flush(_context: &str) -> Option<String> {
        None
    }

    /// No-op; recording stays off. Returns false.
    #[inline(always)]
    pub fn enable_memory() -> bool {
        false
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter, enable_memory, enabled, flush, merge_into_local, observe, span, take_local, SpanGuard,
};

/// Time the enclosing scope (or a named binding's scope):
/// `let _g = obs_span!("phase");`. Expands to [`span`], which is a
/// zero-sized no-op unless the `enabled` feature and `OMT_TRACE` are on.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Bump a named counter by 1 or by an explicit delta:
/// `obs_count!("polar_grid/builds");` or `obs_count!("splits", 4);`.
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::counter($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta)
    };
}

/// Record a value into a named log2 histogram:
/// `obs_observe!("bisect2d/depth", depth as u64);`.
#[macro_export]
macro_rules! obs_observe {
    ($name:expr, $value:expr) => {
        $crate::observe($name, $value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates_and_is_stable() {
        let a = intern("intern/test/label-a");
        let b = intern(&format!("intern/test/label-{}", 'a'));
        assert!(std::ptr::eq(a, b));
        let c = intern("intern/test/label-c");
        assert_ne!(a, c);
        // Interned names are usable as metric names in either mode.
        counter(a, 1);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_and_buckets() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
        assert!(h.max_bucket_edge() >= 1024);
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Registry::default();
        a.record_span("s", 10);
        a.add_counter("c", 2);
        a.record_observation("h", 7);

        let mut b = Registry::default();
        b.record_span("s", 30);
        b.record_span("t", 5);
        b.add_counter("c", 3);
        b.record_observation("h", 9);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.span("s").unwrap().count, 2);
        assert_eq!(ab.span("s").unwrap().total_ns, 40);
        assert_eq!(ab.span("s").unwrap().min_ns, 10);
        assert_eq!(ab.span("s").unwrap().max_ns, 30);
        assert_eq!(ab.counter("c"), 5);
        assert_eq!(ab.hist("h").unwrap().count, 2);
    }

    #[test]
    fn json_object_is_compact_and_deterministic() {
        let mut r = Registry::default();
        r.record_span("s", 5);
        r.add_counter("c", 2);
        r.record_observation("h", 4);
        let json = r.to_json();
        assert_eq!(
            json,
            "{\"spans\":{\"s\":{\"count\":1,\"total_ns\":5,\"min_ns\":5,\"max_ns\":5}},\
             \"counters\":{\"c\":2},\
             \"hists\":{\"h\":{\"count\":1,\"sum\":4,\"buckets\":[[3,1]]}}}"
        );
        assert_eq!(
            Registry::default().to_json(),
            "{\"spans\":{},\"counters\":{},\"hists\":{}}"
        );
    }

    #[test]
    fn jsonl_is_deterministic_and_one_object_per_line() {
        let mut r = Registry::default();
        r.record_span("b", 2);
        r.record_span("a", 1);
        r.add_counter("c", 4);
        r.record_observation("h", 3);
        let text = r.to_jsonl();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"name\":\"b\""));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines[3].contains("\"type\":\"hist\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert_eq!(text, r.to_jsonl());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_path_is_structurally_free() {
        // The guard is a ZST with no Drop; the registry entry points
        // degrade to constants. This is the compile-time half of the
        // "zero overhead when off" guarantee (the bench
        // `obs_overhead` is the timing half).
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        assert!(!enabled());
        let _g = span("anything");
        counter("anything", 1);
        observe("anything", 1);
        assert!(take_local().is_empty());
        assert!(flush("ctx").is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_records_spans_counters_hists() {
        // Forcing memory mode only works if OMT_TRACE has not pinned
        // the mode to Off already; skip quietly in that case.
        if !enable_memory() {
            return;
        }
        let _ = take_local();
        {
            let _g = span("unit/span");
            std::hint::black_box(0u64);
        }
        counter("unit/counter", 3);
        observe("unit/hist", 17);
        let reg = take_local();
        let s = reg.span("unit/span").expect("span recorded");
        assert_eq!(s.count, 1);
        assert_eq!(reg.counter("unit/counter"), 3);
        assert_eq!(reg.hist("unit/hist").unwrap().count, 1);
        let text = reg.to_jsonl();
        assert!(text.contains("\"unit/span\""));
    }
}
