//! Property-based tests of the geometric substrate.

use core::f64::consts::TAU;

use omt_geom::{
    normalize_angle, Ball, BoxRegion, Point, Point2, Point3, PolarPoint, Region, RingSegment,
    ShellCell, SphericalPoint,
};
use omt_rng::proptest::Strategy;
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, RngExt, SeedableRng};

fn finite_point2() -> impl Strategy<Value = Point2> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y)| Point2::new([x, y]))
}

fn finite_point3() -> impl Strategy<Value = Point3> {
    (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y, z)| Point3::new([x, y, z]))
}

props! {
    fn triangle_inequality(a in finite_point2(), b in finite_point2(), c in finite_point2()) {
        let direct = a.distance(&c);
        let via = a.distance(&b) + b.distance(&c);
        prop_assert!(direct <= via + 1e-6 * (1.0 + via));
    }

    fn norm_is_homogeneous(p in finite_point2(), s in -100.0f64..100.0) {
        let scaled = (p * s).norm();
        prop_assert!((scaled - p.norm() * s.abs()).abs() < 1e-6 * (1.0 + scaled));
    }

    fn polar_round_trip(p in finite_point2()) {
        let rt = PolarPoint::from_cartesian(&p).to_cartesian();
        prop_assert!(p.distance(&rt) < 1e-9 * (1.0 + p.norm()));
    }

    fn spherical_round_trip(p in finite_point3()) {
        let rt = SphericalPoint::from_cartesian(&p).to_cartesian();
        prop_assert!(p.distance(&rt) < 1e-9 * (1.0 + p.norm()));
    }

    fn normalized_angles_in_range(theta in -1e5f64..1e5) {
        let a = normalize_angle(theta);
        prop_assert!((0.0..TAU).contains(&a), "angle {a}");
    }

    fn segment_split4_partitions(
        r_lo in 0.0f64..10.0,
        dr in 0.001f64..10.0,
        t_lo in 0.0f64..3.0,
        dt in 0.001f64..3.0,
        fr in 0.0f64..1.0,
        ft in 0.0f64..1.0,
    ) {
        let seg = RingSegment::new(r_lo, r_lo + dr, t_lo, t_lo + dt);
        // An interior point of the segment.
        let p = PolarPoint::new(
            r_lo + fr.min(0.999) * dr,
            t_lo + ft.min(0.999) * dt,
        );
        prop_assert!(seg.contains(&p));
        let kids = seg.split4();
        let containing = kids.iter().filter(|k| k.contains(&p)).count();
        prop_assert_eq!(containing, 1);
        prop_assert!(kids[seg.classify4(&p)].contains(&p));
        // Areas tile exactly.
        let total: f64 = kids.iter().map(RingSegment::area).sum();
        prop_assert!((total - seg.area()).abs() < 1e-9 * (1.0 + seg.area()));
    }

    fn shell_split8_partitions(
        r_lo in 0.0f64..5.0,
        dr in 0.001f64..5.0,
        t_lo in 0.0f64..3.0,
        dt in 0.001f64..3.0,
        z_lo in -1.0f64..0.99,
        fz in 0.001f64..1.0,
        fr in 0.0f64..1.0,
        ft in 0.0f64..1.0,
        fzz in 0.0f64..1.0,
    ) {
        let z_hi = z_lo + fz * (1.0 - z_lo);
        let cell = ShellCell::new(r_lo, r_lo + dr, t_lo, t_lo + dt, z_lo, z_hi);
        let p = SphericalPoint::new(
            r_lo + fr.min(0.999) * dr,
            t_lo + ft.min(0.999) * dt,
            z_lo + fzz.min(0.999) * (z_hi - z_lo),
        );
        prop_assert!(cell.contains(&p));
        let kids = cell.split8();
        prop_assert_eq!(kids.iter().filter(|k| k.contains(&p)).count(), 1);
        prop_assert!(kids[cell.classify8(&p)].contains(&p));
        let total: f64 = kids.iter().map(ShellCell::volume).sum();
        prop_assert!((total - cell.volume()).abs() < 1e-9 * (1.0 + cell.volume()));
    }

    fn ball_samples_inside(seed in 0u64..1000, radius in 0.001f64..100.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ball = Ball::<3>::new(Point::ORIGIN, radius);
        for p in ball.sample_n(&mut rng, 32) {
            prop_assert!(ball.contains(&p));
        }
    }

    fn box_samples_inside(
        seed in 0u64..1000,
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
        w in 0.001f64..10.0,
        h in 0.001f64..10.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let b = BoxRegion::new(Point::new([x, y]), Point::new([x + w, y + h]));
        for p in b.sample_n(&mut rng, 32) {
            prop_assert!(b.contains(&p));
        }
        prop_assert!(b.contains(&b.reference_point()));
    }

    fn lerp_endpoints(a in finite_point2(), b in finite_point2()) {
        prop_assert!(a.lerp(&b, 0.0).distance(&a) < 1e-9 * (1.0 + a.norm()));
        prop_assert!(a.lerp(&b, 1.0).distance(&b) < 1e-9 * (1.0 + b.norm()));
        let m = a.midpoint(&b);
        prop_assert!((m.distance(&a) - m.distance(&b)).abs() < 1e-6 * (1.0 + a.distance(&b)));
    }

    // --- Sampler distribution properties -----------------------------------

    fn unit_disk_samples_have_radius_at_most_one(seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for p in Ball::<2>::unit().sample_n(&mut rng, 64) {
            prop_assert!(p.norm() <= 1.0 + 1e-12, "|p| = {} > 1", p.norm());
        }
    }

    fn ring_segment_samples_stay_in_the_segment(
        seed in 0u64..10_000,
        r_lo in 0.0f64..5.0,
        dr in 0.01f64..5.0,
        t_lo in 0.0f64..6.0,
        dt in 0.01f64..0.28,
    ) {
        let seg = RingSegment::new(r_lo, r_lo + dr, t_lo, t_lo + dt);
        let r_hi = r_lo + dr;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            // Area-uniform point of the segment: inverse-CDF radius (area
            // grows with r^2) and uniform angle.
            let u: f64 = rng.random();
            let r = (r_lo * r_lo + u * (r_hi * r_hi - r_lo * r_lo)).sqrt();
            let theta = rng.random_range(t_lo..t_lo + dt);
            let p = PolarPoint::new(r, theta);
            prop_assert!(
                seg.contains(&p),
                "sample (r={r}, theta={theta}) escaped [{}, {}] x [{}, {}]",
                r_lo, r_hi, t_lo, t_lo + dt
            );
        }
    }
}

/// Chi-squared goodness-of-fit of uniform disk sampling against an
/// equal-area polar grid: `RINGS` annuli at radii `sqrt(i/RINGS)` crossed
/// with `SECTORS` sectors, so every cell covers the same area and expects
/// the same count.
#[test]
fn disk_sampling_is_area_uniform_chi_squared() {
    const RINGS: usize = 4;
    const SECTORS: usize = 6;
    const N: usize = 48_000;
    let mut counts = [0usize; RINGS * SECTORS];
    let mut rng = SmallRng::seed_from_u64(0xD15C);
    for p in Ball::<2>::unit().sample_n(&mut rng, N) {
        let polar = PolarPoint::from_cartesian(&p);
        // Equal-area ring index: area grows with r^2.
        let ring = ((polar.radius * polar.radius * RINGS as f64) as usize).min(RINGS - 1);
        let sector = ((polar.angle / TAU * SECTORS as f64) as usize).min(SECTORS - 1);
        counts[ring * SECTORS + sector] += 1;
    }
    let expected = N as f64 / (RINGS * SECTORS) as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 23 degrees of freedom; the 99.9th percentile is ~49.7. The seed is
    // fixed, so this is a deterministic regression test, with the threshold
    // meaningful if the sampler or generator changes.
    assert!(chi2 < 49.7, "chi-squared {chi2} over {counts:?}");
}
