//! Differential parity suite for the hierarchical capacity-summary index
//! ([`omt_geom::HGrid`]).
//!
//! Two independent proofs live here:
//!
//! 1. **Indexed ≡ scan, end to end.** Seeded churn campaigns (degrees
//!    {2, 4, 6} × membership scales {1k, 10k, 100k} × several churn
//!    schedules) replay the identical event stream into two
//!    [`DynamicOverlay`]s — one answering parent searches through the
//!    index, one through the per-cell linear scans — and compare the
//!    parent *choice* for every single join before applying it, plus the
//!    final trees bit for bit (positions, parents, delays, radius). The
//!    indexed overlay additionally reconciles its incrementally-maintained
//!    summaries against a from-scratch index rebuild at sampled events
//!    (`assert_invariants`).
//!
//! 2. **No false prunes.** A shrink-enabled `props!` campaign builds
//!    synthetic indexes over random geometries and host populations,
//!    queries them with the prune audit on, and verifies — against a
//!    brute-force linear scan — that the query's answer is exact and that
//!    every pruned subtree's lower bound genuinely excludes the answer:
//!    each open host under a pruned node costs at least the recorded
//!    bound and strictly more than the final winner.
//!
//! The 100k-prefill campaign is `#[ignore]`d for everyday runs; CI's
//! `hgrid` job and `scripts/verify.sh` run the default set in release.

use core::f64::consts::TAU;

use omt_core::DynamicOverlay;
use omt_geom::{HGrid, Point2, PruneRecord};
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, RngExt, SeedableRng};

/// A churn schedule: phases of `(join_probability, events)` replayed in
/// order. Leave targets are uniform over the live set.
type Schedule = &'static [(f64, usize)];

/// Steady state: the 2:1 join:leave mix of the core churn fuzz.
const STEADY: Schedule = &[(2.0 / 3.0, 1)];

/// Growth, then a decline that drains most of the membership, then
/// regrowth — crosses many rebuild boundaries in both directions.
const WAVES: Schedule = &[(0.95, 2), (0.15, 1), (0.85, 2)];

/// Join-only prefill followed by pure steady churn at peak size.
const PREFILL: Schedule = &[(1.0, 1), (0.5, 1)];

/// Replays `events` churn events (schedule-weighted) into a scan overlay
/// and an indexed overlay, proving the parent choice bit-equal on every
/// join. `check_every` throttles the O(n) summary reconciliation and
/// snapshot comparison for the big campaigns.
fn parity_campaign(seed: u64, degree: u32, events: usize, schedule: Schedule, check_every: usize) {
    let total_weight: usize = schedule.iter().map(|&(_, w)| w).sum();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scan = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
    scan.set_hgrid(false);
    let mut indexed = DynamicOverlay::new(Point2::ORIGIN, degree).unwrap();
    indexed.set_hgrid(true);
    let mut live = Vec::new();
    for i in 0..events {
        // Pick the phase by position in the stream, then the event kind.
        let phase = (i * total_weight / events).min(total_weight - 1);
        let mut acc = 0;
        let join_p = schedule
            .iter()
            .find(|&&(_, w)| {
                acc += w;
                phase < acc
            })
            .expect("phase indexes the schedule")
            .0;
        if live.len() < 8 || rng.random::<f64>() < join_p {
            let p = Point2::new([rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)]);
            // The load-bearing comparison: identical parent choice,
            // before the join mutates anything.
            assert_eq!(
                scan.peek_parent(&p),
                indexed.peek_parent(&p),
                "seed {seed:#x} degree {degree} event {i}: parent choice diverged"
            );
            let a = scan.join(p);
            let b = indexed.join(p);
            assert_eq!(
                a, b,
                "seed {seed:#x} degree {degree} event {i}: ids diverged"
            );
            live.push(a);
        } else {
            let at = rng.random_range(0..live.len());
            let id = live.remove(at);
            scan.leave(id).unwrap();
            indexed.leave(id).unwrap();
        }
        if i % check_every == 0 {
            // Reconciles the incremental summaries against a from-scratch
            // index rebuild, among the rest of the overlay invariants.
            indexed.assert_invariants();
            assert_trees_identical(&indexed, &scan, seed, degree, i);
        }
    }
    indexed.assert_invariants();
    assert_trees_identical(&indexed, &scan, seed, degree, events);
    let (indexed_cells, _) = indexed.search_probes();
    let (scan_cells, _) = scan.search_probes();
    assert!(
        indexed_cells < scan_cells,
        "seed {seed:#x} degree {degree}: index saved no open-list scans \
         ({indexed_cells} vs {scan_cells})"
    );
}

/// Bit-level comparison of the two overlays' snapshots.
fn assert_trees_identical(
    indexed: &DynamicOverlay,
    scan: &DynamicOverlay,
    seed: u64,
    degree: u32,
    event: usize,
) {
    let got = indexed.snapshot().unwrap();
    let want = scan.snapshot().unwrap();
    let context = format!("seed {seed:#x} degree {degree} event {event}");
    assert_eq!(got.len(), want.len(), "{context}: membership differs");
    for i in 0..got.len() {
        assert_eq!(
            got.points()[i],
            want.points()[i],
            "{context}: host {i} position"
        );
        assert_eq!(got.parent(i), want.parent(i), "{context}: host {i} parent");
        assert_eq!(
            got.depth(i).to_bits(),
            want.depth(i).to_bits(),
            "{context}: host {i} delay bits"
        );
    }
    assert_eq!(
        got.radius().to_bits(),
        want.radius().to_bits(),
        "{context}: radius bits"
    );
}

#[test]
fn parity_1k_steady_all_degrees() {
    for (seed, degree) in [(0x11u64, 2u32), (0x12, 4), (0x13, 6)] {
        parity_campaign(seed, degree, 1_500, STEADY, 50);
    }
}

#[test]
fn parity_1k_waves_all_degrees() {
    for (seed, degree) in [(0x21u64, 2u32), (0x22, 4), (0x23, 6)] {
        parity_campaign(seed, degree, 1_500, WAVES, 50);
    }
}

#[test]
fn parity_1k_prefill_all_degrees() {
    for (seed, degree) in [(0x31u64, 2u32), (0x32, 4), (0x33, 6)] {
        parity_campaign(seed, degree, 1_500, PREFILL, 50);
    }
}

#[test]
fn parity_10k_steady() {
    for (seed, degree) in [(0x41u64, 2u32), (0x42, 4), (0x43, 6)] {
        parity_campaign(seed, degree, 12_000, STEADY, 2_000);
    }
}

#[test]
fn parity_10k_waves() {
    parity_campaign(0x51, 4, 12_000, WAVES, 2_000);
}

/// The 100k-prefill campaign from the issue matrix. Ignored by default —
/// minutes of runtime — but bit-for-bit like the rest:
/// `cargo test -p omt-geom --release --test hgrid_parity -- --ignored`.
#[test]
#[ignore = "100k-host campaign; run explicitly in release"]
fn parity_100k_prefill() {
    parity_campaign(0x61, 4, 110_000, PREFILL, 20_000);
}

// ---------------------------------------------------------------------------
// No-false-prune property: audited queries over synthetic geometries.
// ---------------------------------------------------------------------------

/// One synthetic open host: its flat cell, degree class, delay summary
/// contribution, and a position inside the cell's sector region.
#[derive(Clone, Debug)]
struct SynthHost {
    cell: usize,
    class: usize,
    delay: f64,
    pos: Point2,
}

/// Builds a random population over a random grid geometry, returning the
/// ring radii and hosts. Positions are sampled inside each host's sector
/// region (angle within the segment's wedge, radius at or beyond the
/// ring's inner radius) so the region bound argument applies exactly.
fn synth_population(
    rng: &mut SmallRng,
    rings: u32,
    classes: usize,
    hosts: usize,
) -> (Vec<f64>, Vec<SynthHost>) {
    let mut ring_inner = vec![0.0f64];
    let mut r = 0.0;
    for _ in 1..=rings {
        r += rng.random_range(0.05..0.5);
        ring_inner.push(r);
    }
    let population = (0..hosts)
        .map(|_| {
            let ring = rng.random_range(0..=rings);
            let segments = 1u64 << ring;
            let seg = rng.random_range(0..segments);
            let width = TAU / segments as f64;
            let theta = (seg as f64 + rng.random::<f64>()) * width;
            let radius = ring_inner[ring as usize] + rng.random_range(0.0..0.7);
            SynthHost {
                cell: ((1u64 << ring) - 1 + seg) as usize,
                class: rng.random_range(0..classes),
                delay: rng.random_range(0.0..2.0),
                pos: Point2::new([radius * theta.cos(), radius * theta.sin()]),
            }
        })
        .collect();
    (ring_inner, population)
}

/// Declares the population to a fresh index, `set_cell` style.
fn index_population(
    rings: u32,
    classes: usize,
    ring_inner: &[f64],
    population: &[SynthHost],
) -> HGrid {
    let mut hg = HGrid::new(rings, classes, ring_inner);
    for cell in 0..hg.cells() {
        let mut counts = vec![0u32; classes];
        let mut min_delay = f64::INFINITY;
        for h in population.iter().filter(|h| h.cell == cell) {
            counts[h.class] += 1;
            min_delay = min_delay.min(h.delay);
        }
        if counts.iter().any(|&c| c > 0) {
            hg.set_cell(cell, &counts, min_delay);
        }
    }
    hg
}

/// Whether `cell` lies in the subtree rooted at `node` (ancestor walk of
/// the flat binary-heap layout).
fn in_subtree(mut cell: usize, node: usize) -> bool {
    loop {
        if cell == node {
            return true;
        }
        if cell == 0 {
            return false;
        }
        cell = (cell - 1) / 2;
    }
}

props! {
    // Every audited query must (a) agree with a brute-force linear scan
    // under the (cost, cell, list position) tie rule and (b) have pruned
    // only subtrees whose recorded lower bound genuinely excludes the
    // final answer: each capacity-eligible host under a pruned node costs
    // at least the bound and strictly more than the winner.
    #[cases(64)]
    fn pruned_subtrees_never_hide_the_answer(
        seed in 0u64..1_000_000,
        rings in 1u32..6,
        classes in 1usize..7,
        hosts in 1usize..120,
        cap_pick in 1usize..7,
        qx in -2.0f64..2.0,
        qy in -2.0f64..2.0
    ) {
        let cap = cap_pick.min(classes);
        let mut rng = SmallRng::seed_from_u64(seed);
        let (ring_inner, population) = synth_population(&mut rng, rings, classes, hosts);
        let hg = index_population(rings, classes, &ring_inner, &population);
        let q = Point2::new([qx, qy]);
        let cost_of = |h: &SynthHost| h.delay + q.distance(&h.pos);

        // The per-cell closure mirrors the overlay's scan: earliest
        // strict minimum among capacity-eligible hosts of that cell.
        let mut audit = Vec::new();
        let got = hg.best_open_parent(
            &q,
            cap,
            |cell| {
                population
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.cell == cell && h.class < cap)
                    .map(|(i, h)| (cost_of(h), i))
                    .fold(None, |acc: Option<(f64, usize)>, (c, i)| match acc {
                        Some((bc, bi)) if bc <= c => Some((bc, bi)),
                        _ => Some((c, i)),
                    })
            },
            Some(&mut audit),
        );

        // Brute force: lexicographic minimum of (cost, cell, index).
        let want = population
            .iter()
            .enumerate()
            .filter(|(_, h)| h.class < cap)
            .map(|(i, h)| (cost_of(h), h.cell, i))
            .fold(None, |acc: Option<(f64, usize, usize)>, (c, cell, i)| {
                match acc {
                    Some((bc, bcell, bi))
                        if bc < c || (bc == c && (bcell, bi) <= (cell, i)) =>
                    {
                        Some((bc, bcell, bi))
                    }
                    _ => Some((c, cell, i)),
                }
            });

        match (got, want) {
            (None, None) => {}
            (Some((gc, gcell, gi)), Some((wc, wcell, wi))) => {
                prop_assert!(gc.to_bits() == wc.to_bits(), "cost differs: {gc} vs {wc}");
                prop_assert_eq!(gcell, wcell);
                prop_assert_eq!(gi, wi);
            }
            (g, w) => panic!("indexed {g:?} vs brute force {w:?}"),
        }

        // No false prunes: every record's bound must exclude the answer.
        let final_best = got.map(|(c, _, _)| c);
        for PruneRecord { node, lower_bound, best_at_prune } in audit {
            let best =
                final_best.expect("a prune implies an incumbent, so an answer exists");
            prop_assert!(
                lower_bound > best_at_prune,
                "recorded a non-strict prune: {lower_bound} <= {best_at_prune}"
            );
            for h in population.iter().filter(|h| h.class < cap) {
                if !in_subtree(h.cell, node) {
                    continue;
                }
                let c = cost_of(h);
                prop_assert!(
                    c >= lower_bound,
                    "host in pruned subtree {node} costs {c} < bound {lower_bound}"
                );
                prop_assert!(
                    c > best,
                    "pruned subtree {node} hid a host of cost {c} <= answer {best}"
                );
            }
        }
    }
}
