//! Smallest enclosing balls.
//!
//! The minimum-diameter tree construction of the paper's conclusion roots
//! the grid at "an artificial root node … chosen among nodes closest to
//! the sphere center" — i.e. the center of the smallest enclosing ball of
//! the point set. Computed exactly in expected `O(n)` with Welzl's
//! algorithm in 2-D; 3-D uses Ritter's approximate bounding sphere, which
//! is within a few percent and entirely sufficient for root selection.

use crate::point::{Point2, Point3};

/// A circle in the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point2,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Whether `p` lies inside or on the circle, with a small relative
    /// tolerance (needed for floating-point boundary cases).
    pub fn contains(&self, p: &Point2) -> bool {
        p.distance(&self.center) <= self.radius * (1.0 + 1e-10) + 1e-12
    }
}

/// The smallest circle enclosing all points (Welzl's algorithm, expected
/// linear time on shuffled input — input order is shuffled internally with
/// a fixed deterministic permutation so the result is reproducible).
///
/// Returns `None` for an empty input; a single point yields a zero-radius
/// circle.
///
/// # Examples
///
/// ```
/// use omt_geom::{enclosing::smallest_enclosing_circle, Point2};
///
/// let pts = vec![
///     Point2::new([0.0, 0.0]),
///     Point2::new([2.0, 0.0]),
///     Point2::new([1.0, 1.0]),
/// ];
/// let c = smallest_enclosing_circle(&pts).unwrap();
/// assert!((c.center.x() - 1.0).abs() < 1e-9);
/// assert!((c.radius - 1.0).abs() < 1e-9);
/// ```
pub fn smallest_enclosing_circle(points: &[Point2]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    // Deterministic shuffle (SplitMix-driven Fisher-Yates) for the expected
    // linear-time guarantee without depending on a caller RNG.
    let mut pts: Vec<Point2> = points.to_vec();
    let mut state = 0x853c_49e6_748f_ea9bu64;
    let mut next = move || {
        state = state
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(0x14057b7ef767814f);
        state
    };
    for i in (1..pts.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        pts.swap(i, j);
    }
    // Move-to-front variant of Welzl's algorithm (iterative, no recursion
    // depth concerns).
    let mut c = Circle {
        center: pts[0],
        radius: 0.0,
    };
    for i in 1..pts.len() {
        if c.contains(&pts[i]) {
            continue;
        }
        // pts[i] is on the boundary of the new circle.
        c = Circle {
            center: pts[i],
            radius: 0.0,
        };
        for j in 0..i {
            if c.contains(&pts[j]) {
                continue;
            }
            // pts[i] and pts[j] are both on the boundary.
            c = circle_from_two(&pts[i], &pts[j]);
            for k in 0..j {
                if c.contains(&pts[k]) {
                    continue;
                }
                c = circle_from_three(&pts[i], &pts[j], &pts[k]);
            }
        }
    }
    Some(c)
}

fn circle_from_two(a: &Point2, b: &Point2) -> Circle {
    let center = a.midpoint(b);
    Circle {
        center,
        radius: center.distance(a),
    }
}

/// Circumcircle of three points; falls back to the two-point circle of the
/// farthest pair when (nearly) collinear.
fn circle_from_three(a: &Point2, b: &Point2, c: &Point2) -> Circle {
    let d = 2.0 * (a.x() * (b.y() - c.y()) + b.x() * (c.y() - a.y()) + c.x() * (a.y() - b.y()));
    if d.abs() < 1e-14 {
        // Collinear: the farthest pair's circle covers all three.
        let candidates = [
            circle_from_two(a, b),
            circle_from_two(a, c),
            circle_from_two(b, c),
        ];
        return candidates
            .into_iter()
            .max_by(|x, y| x.radius.total_cmp(&y.radius))
            .expect("three candidates");
    }
    let a2 = a.norm_squared();
    let b2 = b.norm_squared();
    let c2 = c.norm_squared();
    let ux = (a2 * (b.y() - c.y()) + b2 * (c.y() - a.y()) + c2 * (a.y() - b.y())) / d;
    let uy = (a2 * (c.x() - b.x()) + b2 * (a.x() - c.x()) + c2 * (b.x() - a.x())) / d;
    let center = Point2::new([ux, uy]);
    Circle {
        center,
        radius: center.distance(a),
    }
}

/// A ball in three dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sphere {
    /// Center of the ball.
    pub center: Point3,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Sphere {
    /// Whether `p` lies inside or on the sphere (small tolerance).
    pub fn contains(&self, p: &Point3) -> bool {
        p.distance(&self.center) <= self.radius * (1.0 + 1e-10) + 1e-12
    }
}

/// Ritter's approximate bounding sphere: at most ~5% larger than optimal,
/// linear time, and always a true enclosure.
///
/// Returns `None` for an empty input.
pub fn bounding_sphere(points: &[Point3]) -> Option<Sphere> {
    let first = *points.first()?;
    // Farthest point from an arbitrary start, then farthest from that —
    // a diameter-ish pair.
    let far = |from: &Point3| {
        *points
            .iter()
            .max_by(|a, b| {
                a.distance_squared(from)
                    .total_cmp(&b.distance_squared(from))
            })
            .expect("nonempty")
    };
    let a = far(&first);
    let b = far(&a);
    let mut center = a.midpoint(&b);
    let mut radius = 0.5 * a.distance(&b);
    // Grow to cover stragglers.
    for p in points {
        let d = p.distance(&center);
        if d > radius {
            let new_radius = 0.5 * (radius + d);
            let shift = (d - new_radius) / d;
            center = center + (*p - center) * shift;
            radius = new_radius * (1.0 + 1e-12);
        }
    }
    Some(Sphere { center, radius })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_rng::rngs::SmallRng;
    use omt_rng::{RngExt, SeedableRng};

    #[test]
    fn encloses_all_points() {
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = 1 + (trial * 13) % 200;
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new([rng.random_range(-9.0..9.0), rng.random_range(-9.0..9.0)]))
                .collect();
            let c = smallest_enclosing_circle(&pts).unwrap();
            for p in &pts {
                assert!(c.contains(p), "trial {trial}: {p:?} outside {c:?}");
            }
        }
    }

    #[test]
    fn minimality_versus_brute_force() {
        // For small sets, check against the brute-force optimum over all
        // 2- and 3-point support circles.
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..15 {
            let n = 3 + rng.random_range(0..8usize);
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new([rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0)]))
                .collect();
            let c = smallest_enclosing_circle(&pts).unwrap();
            let mut best = f64::INFINITY;
            for i in 0..n {
                for j in (i + 1)..n {
                    let cand = circle_from_two(&pts[i], &pts[j]);
                    if pts.iter().all(|p| cand.contains(p)) {
                        best = best.min(cand.radius);
                    }
                    for k in (j + 1)..n {
                        let cand = circle_from_three(&pts[i], &pts[j], &pts[k]);
                        if pts.iter().all(|p| cand.contains(p)) {
                            best = best.min(cand.radius);
                        }
                    }
                }
            }
            assert!(
                c.radius <= best * (1.0 + 1e-9),
                "Welzl {} vs brute {}",
                c.radius,
                best
            );
        }
    }

    #[test]
    fn known_configurations() {
        // Equilateral-ish right triangle on a circle of radius 1.
        let c = smallest_enclosing_circle(&[
            Point2::new([1.0, 0.0]),
            Point2::new([-1.0, 0.0]),
            Point2::new([0.0, 1.0]),
        ])
        .unwrap();
        assert!(c.center.norm() < 1e-9);
        assert!((c.radius - 1.0).abs() < 1e-9);
        // Two points: diametral circle.
        let c = smallest_enclosing_circle(&[Point2::ORIGIN, Point2::new([2.0, 0.0])]).unwrap();
        assert!((c.radius - 1.0).abs() < 1e-12);
        // One point / empty.
        let c = smallest_enclosing_circle(&[Point2::new([5.0, 5.0])]).unwrap();
        assert_eq!(c.radius, 0.0);
        assert!(smallest_enclosing_circle(&[]).is_none());
    }

    #[test]
    fn collinear_points() {
        let line: Vec<Point2> = (0..20).map(|i| Point2::new([i as f64, 0.0])).collect();
        let c = smallest_enclosing_circle(&line).unwrap();
        assert!((c.radius - 9.5).abs() < 1e-9);
        assert!((c.center.x() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn duplicates() {
        let pts = vec![Point2::new([1.0, 1.0]); 10];
        let c = smallest_enclosing_circle(&pts).unwrap();
        assert_eq!(c.radius, 0.0);
    }

    #[test]
    fn bounding_sphere_encloses_and_is_tightish() {
        let mut rng = SmallRng::seed_from_u64(6);
        let pts: Vec<Point3> = (0..300)
            .map(|_| {
                Point3::new([
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ])
            })
            .collect();
        let s = bounding_sphere(&pts).unwrap();
        for p in &pts {
            assert!(s.contains(p));
        }
        // Lower bound: half the farthest-pair distance; Ritter is within
        // a modest factor of it.
        let mut diam = 0.0f64;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                diam = diam.max(pts[i].distance(&pts[j]));
            }
        }
        assert!(s.radius >= diam / 2.0 - 1e-9);
        assert!(
            s.radius <= diam * 0.75,
            "radius {} vs diameter {}",
            s.radius,
            diam
        );
        assert!(bounding_sphere(&[]).is_none());
    }
}
