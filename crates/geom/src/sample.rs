//! Uniform random sampling primitives.
//!
//! The paper's experiments draw points uniformly from the unit disk (2-D)
//! and the unit ball (3-D). These helpers implement exact uniform sampling
//! for disks, balls of any dimension, sphere surfaces, boxes, and triangles,
//! using only `omt-rng`'s uniform primitives (Gaussian deviates come from our
//! own Marsaglia polar transform, so no extra dependency is needed).

use omt_rng::{Rng, RngExt};

use crate::point::{Point, Point2};

/// A standard normal deviate via the Marsaglia polar method.
///
/// Generates pairs internally but returns one value per call (the spare is
/// discarded — simpler, and sampling is not the bottleneck anywhere in this
/// workspace).
pub fn standard_normal(rng: &mut (impl Rng + ?Sized)) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// A point uniform in the disk of the given radius centered at the origin.
///
/// Uses the inverse-CDF radius `R·√u`, which is exact.
pub fn uniform_in_disk(rng: &mut (impl Rng + ?Sized), radius: f64) -> Point2 {
    let r = radius * rng.random::<f64>().sqrt();
    let theta = rng.random_range(0.0..core::f64::consts::TAU);
    Point2::new([r * theta.cos(), r * theta.sin()])
}

/// A point uniform in the `D`-ball of the given radius centered at the
/// origin: Gaussian direction scaled by `R·u^(1/D)`.
pub fn uniform_in_ball<const D: usize>(rng: &mut (impl Rng + ?Sized), radius: f64) -> Point<D> {
    let dir = uniform_on_sphere::<D>(rng);
    let r = radius * rng.random::<f64>().powf(1.0 / D as f64);
    dir * r
}

/// A unit vector uniform on the `(D-1)`-sphere.
///
/// # Panics
///
/// Panics if `D == 0`.
pub fn uniform_on_sphere<const D: usize>(rng: &mut (impl Rng + ?Sized)) -> Point<D> {
    assert!(D > 0, "dimension must be positive");
    loop {
        let mut coords = [0.0; D];
        for c in &mut coords {
            *c = standard_normal(rng);
        }
        let p = Point::new(coords);
        if let Some(unit) = p.normalized() {
            if unit.is_finite() {
                return unit;
            }
        }
    }
}

/// A point uniform in the axis-aligned box `[min, max]`.
///
/// # Panics
///
/// Panics if any `min[i] > max[i]`.
pub fn uniform_in_box<const D: usize>(
    rng: &mut (impl Rng + ?Sized),
    min: &Point<D>,
    max: &Point<D>,
) -> Point<D> {
    let mut coords = [0.0; D];
    for i in 0..D {
        assert!(min[i] <= max[i], "inverted box extent on axis {i}");
        coords[i] = if min[i] == max[i] {
            min[i]
        } else {
            rng.random_range(min[i]..max[i])
        };
    }
    Point::new(coords)
}

/// A point uniform in the triangle `(a, b, c)` via the reflected-parallelogram
/// method.
pub fn uniform_in_triangle(
    rng: &mut (impl Rng + ?Sized),
    a: &Point2,
    b: &Point2,
    c: &Point2,
) -> Point2 {
    let mut u: f64 = rng.random();
    let mut v: f64 = rng.random();
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    *a + (*b - *a) * u + (*c - *a) * v
}

/// Signed area of triangle `(a, b, c)` (positive when counter-clockwise).
pub fn triangle_signed_area(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    0.5 * ((b.x() - a.x()) * (c.y() - a.y()) - (c.x() - a.x()) * (b.y() - a.y()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x0517_5EED)
    }

    const N: usize = 20_000;

    #[test]
    fn disk_points_are_inside_and_uniform() {
        let mut rng = rng();
        let mut inside_half = 0usize;
        for _ in 0..N {
            let p = uniform_in_disk(&mut rng, 2.0);
            assert!(p.norm() <= 2.0 + 1e-12);
            if p.norm() <= 2.0 / 2.0_f64.sqrt() {
                inside_half += 1;
            }
        }
        // Half the area lies within radius R/sqrt(2).
        let frac = inside_half as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn ball_points_are_inside_and_radially_uniform() {
        let mut rng = rng();
        let mut inside_half = 0usize;
        for _ in 0..N {
            let p = uniform_in_ball::<3>(&mut rng, 1.0);
            assert!(p.norm() <= 1.0 + 1e-12);
            if p.norm() <= 0.5_f64.cbrt() {
                inside_half += 1;
            }
        }
        let frac = inside_half as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn sphere_points_are_unit_and_balanced() {
        let mut rng = rng();
        let mut pos_z = 0usize;
        for _ in 0..N {
            let p = uniform_on_sphere::<3>(&mut rng);
            assert!((p.norm() - 1.0).abs() < 1e-12);
            if p[2] > 0.0 {
                pos_z += 1;
            }
        }
        let frac = pos_z as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng();
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..N {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / N as f64;
        let var = sum_sq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn box_points_inside() {
        let mut rng = rng();
        let min = Point::new([-1.0, 2.0]);
        let max = Point::new([1.0, 3.0]);
        for _ in 0..1000 {
            let p = uniform_in_box(&mut rng, &min, &max);
            assert!(p[0] >= -1.0 && p[0] < 1.0);
            assert!(p[1] >= 2.0 && p[1] < 3.0);
        }
    }

    #[test]
    fn degenerate_box_axis() {
        let mut rng = rng();
        let min = Point::new([0.0, 5.0]);
        let max = Point::new([1.0, 5.0]);
        let p = uniform_in_box(&mut rng, &min, &max);
        assert_eq!(p[1], 5.0);
    }

    #[test]
    fn triangle_points_inside() {
        let mut rng = rng();
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([2.0, 0.0]);
        let c = Point2::new([0.0, 2.0]);
        for _ in 0..2000 {
            let p = uniform_in_triangle(&mut rng, &a, &b, &c);
            assert!(p.x() >= -1e-12 && p.y() >= -1e-12 && p.x() + p.y() <= 2.0 + 1e-12);
        }
    }

    #[test]
    fn triangle_area_sign() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([1.0, 0.0]);
        let c = Point2::new([0.0, 1.0]);
        assert!((triangle_signed_area(&a, &b, &c) - 0.5).abs() < 1e-15);
        assert!((triangle_signed_area(&a, &c, &b) + 0.5).abs() < 1e-15);
    }

    #[test]
    fn two_dim_ball_matches_disk_distribution() {
        // uniform_in_ball::<2> must agree statistically with uniform_in_disk.
        let mut rng = rng();
        let mut inside = 0usize;
        for _ in 0..N {
            let p = uniform_in_ball::<2>(&mut rng, 1.0);
            assert!(p.norm() <= 1.0 + 1e-12);
            if p.norm() <= core::f64::consts::FRAC_1_SQRT_2 {
                inside += 1;
            }
        }
        let frac = inside as f64 / N as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }
}
