//! Fixed-dimension Euclidean points.
//!
//! [`Point<D>`] is a `D`-dimensional point with `f64` coordinates. The two
//! dimensions the paper evaluates get convenient aliases: [`Point2`] and
//! [`Point3`].

use core::fmt;
use core::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A point (equivalently, a vector) in `D`-dimensional Euclidean space.
///
/// The type parameter is the compile-time dimension, so mixing points of
/// different dimensions is a type error rather than a runtime surprise.
///
/// # Examples
///
/// ```
/// use omt_geom::Point2;
///
/// let a = Point2::new([3.0, 0.0]);
/// let b = Point2::new([0.0, 4.0]);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Default for Point<D> {
    /// The origin.
    fn default() -> Self {
        Self::ORIGIN
    }
}

/// A point in the plane. The paper's primary setting (unit disk).
pub type Point2 = Point<2>;

/// A point in three-dimensional space. Used for the unit-sphere experiments
/// (Figure 8 of the paper).
pub type Point3 = Point<3>;

impl<const D: usize> Point<D> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Self { coords: [0.0; D] };

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// Returns the coordinate array.
    #[inline]
    pub const fn coords(&self) -> [f64; D] {
        self.coords
    }

    /// Returns the coordinates as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coords
    }

    /// The compile-time dimension `D`.
    #[inline]
    pub const fn dim(&self) -> usize {
        D
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_squared(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// Euclidean norm (distance from the origin).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] in hot loops that only compare
    /// distances: it avoids the square root.
    #[inline]
    pub fn distance_squared(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.coords[i] * other.coords[i];
        }
        acc
    }

    /// Midpoint of the segment between `self` and `other`.
    ///
    /// ```
    /// use omt_geom::Point2;
    /// let m = Point2::new([0.0, 0.0]).midpoint(&Point2::new([2.0, 4.0]));
    /// assert_eq!(m, Point2::new([1.0, 2.0]));
    /// ```
    #[inline]
    pub fn midpoint(&self, other: &Self) -> Self {
        let mut coords = [0.0; D];
        for (c, (a, b)) in coords.iter_mut().zip(self.coords.iter().zip(&other.coords)) {
            *c = 0.5 * (a + b);
        }
        Self { coords }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate.
    #[inline]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut coords = [0.0; D];
        for (c, (a, b)) in coords.iter_mut().zip(self.coords.iter().zip(&other.coords)) {
            *c = a + t * (b - a);
        }
        Self { coords }
    }

    /// Returns the unit vector pointing in the same direction, or `None` for
    /// the zero vector (whose direction is undefined).
    #[inline]
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(*self / n)
        }
    }

    /// True if every coordinate is finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Point2 {
    /// The x coordinate.
    #[inline]
    pub const fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The y coordinate.
    #[inline]
    pub const fn y(&self) -> f64 {
        self.coords[1]
    }

    /// The polar angle in `[0, 2π)` measured counter-clockwise from the
    /// positive x axis. The angle of the origin is defined as `0`.
    #[inline]
    pub fn angle(&self) -> f64 {
        crate::polar::normalize_angle(self.coords[1].atan2(self.coords[0]))
    }
}

impl Point3 {
    /// The x coordinate.
    #[inline]
    pub const fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The y coordinate.
    #[inline]
    pub const fn y(&self) -> f64 {
        self.coords[1]
    }

    /// The z coordinate.
    #[inline]
    pub const fn z(&self) -> f64 {
        self.coords[2]
    }

    /// Azimuthal angle in the xy-plane, in `[0, 2π)`.
    #[inline]
    pub fn azimuth(&self) -> f64 {
        crate::polar::normalize_angle(self.coords[1].atan2(self.coords[0]))
    }

    /// `cos` of the polar (inclination) angle: `z / ‖p‖`, in `[-1, 1]`.
    ///
    /// This is the natural "latitude" coordinate for equal-volume spherical
    /// grids (Archimedes' hat-box theorem): the solid angle of a box in
    /// `(azimuth, cos_polar)` space is the product of its side lengths.
    /// Returns `1.0` for the origin by convention.
    #[inline]
    pub fn cos_polar(&self) -> f64 {
        let n = self.norm();
        if n == 0.0 {
            1.0
        } else {
            (self.coords[2] / n).clamp(-1.0, 1.0)
        }
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.6}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Self { coords }
    }
}

impl<const D: usize> From<Point<D>> for [f64; D] {
    #[inline]
    fn from(p: Point<D>) -> Self {
        p.coords
    }
}

impl<const D: usize> AsRef<[f64]> for Point<D> {
    #[inline]
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut coords = [0.0; D];
        for (c, (a, b)) in coords.iter_mut().zip(self.coords.iter().zip(&rhs.coords)) {
            *c = a + b;
        }
        Self { coords }
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let mut coords = [0.0; D];
        for (c, (a, b)) in coords.iter_mut().zip(self.coords.iter().zip(&rhs.coords)) {
            *c = a - b;
        }
        Self { coords }
    }
}

impl<const D: usize> Neg for Point<D> {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        let mut coords = [0.0; D];
        for (c, a) in coords.iter_mut().zip(&self.coords) {
            *c = -a;
        }
        Self { coords }
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;

    #[inline]
    fn mul(self, s: f64) -> Self {
        let mut coords = [0.0; D];
        for (c, a) in coords.iter_mut().zip(&self.coords) {
            *c = a * s;
        }
        Self { coords }
    }
}

impl<const D: usize> Div<f64> for Point<D> {
    type Output = Self;

    /// # Panics
    ///
    /// Does not panic; dividing by zero yields non-finite coordinates, which
    /// [`Point::is_finite`] detects.
    #[inline]
    fn div(self, s: f64) -> Self {
        let mut coords = [0.0; D];
        for (c, a) in coords.iter_mut().zip(&self.coords) {
            *c = a / s;
        }
        Self { coords }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point2::new([1.5, -2.0]);
        let b = Point2::new([-0.5, 3.0]);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn three_dimensional_distance() {
        let a = Point3::new([1.0, 2.0, 2.0]);
        assert_eq!(a.norm(), 3.0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Point2::new([1.0, 2.0]);
        let b = Point2::new([3.0, -1.0]);
        assert_eq!(a + b, Point2::new([4.0, 1.0]));
        assert_eq!(a - b, Point2::new([-2.0, 3.0]));
        assert_eq!(-a, Point2::new([-1.0, -2.0]));
        assert_eq!(a * 2.0, Point2::new([2.0, 4.0]));
        assert_eq!(a / 2.0, Point2::new([0.5, 1.0]));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point2::new([0.0, 0.0]);
        let b = Point2::new([2.0, 6.0]);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn angle_quadrants() {
        use core::f64::consts::PI;
        assert!((Point2::new([1.0, 0.0]).angle() - 0.0).abs() < 1e-12);
        assert!((Point2::new([0.0, 1.0]).angle() - PI / 2.0).abs() < 1e-12);
        assert!((Point2::new([-1.0, 0.0]).angle() - PI).abs() < 1e-12);
        assert!((Point2::new([0.0, -1.0]).angle() - 3.0 * PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn angle_is_always_in_range() {
        for i in 0..100 {
            let t = (i as f64) * 0.7 - 35.0;
            let p = Point2::new([t.cos() * 2.0, t.sin() * 2.0]);
            let a = p.angle();
            assert!((0.0..core::f64::consts::TAU).contains(&a), "angle {a}");
        }
    }

    #[test]
    fn cos_polar_poles_and_equator() {
        assert_eq!(Point3::new([0.0, 0.0, 2.0]).cos_polar(), 1.0);
        assert_eq!(Point3::new([0.0, 0.0, -2.0]).cos_polar(), -1.0);
        assert!(Point3::new([1.0, 1.0, 0.0]).cos_polar().abs() < 1e-12);
        // Origin convention.
        assert_eq!(Point3::ORIGIN.cos_polar(), 1.0);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let p = Point2::new([3.0, 4.0]);
        let n = p.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(Point2::ORIGIN.normalized().is_none());
    }

    #[test]
    fn dot_product_orthogonal() {
        let a = Point2::new([1.0, 0.0]);
        let b = Point2::new([0.0, 5.0]);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.dot(&a), 1.0);
    }

    #[test]
    fn conversions_round_trip() {
        let arr = [1.0, 2.0, 3.0];
        let p = Point3::from(arr);
        let back: [f64; 3] = p.into();
        assert_eq!(arr, back);
        assert_eq!(p.as_slice(), &arr);
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(Point2::new([1.0, 2.0]).is_finite());
        assert!(!Point2::new([f64::NAN, 0.0]).is_finite());
        assert!(!(Point2::new([1.0, 0.0]) / 0.0).is_finite());
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let p = Point2::new([1.0, 2.0]);
        assert!(!format!("{p:?}").is_empty());
        assert_eq!(format!("{p}"), "(1.000000, 2.000000)");
    }

    #[test]
    fn indexing() {
        let mut p = Point3::new([1.0, 2.0, 3.0]);
        assert_eq!(p[2], 3.0);
        p[0] = 9.0;
        assert_eq!(p.coords(), [9.0, 2.0, 3.0]);
    }
}
