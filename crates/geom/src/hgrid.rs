//! Hierarchical capacity-summary index over polar-grid cells.
//!
//! The polar grid's flat cell numbering (`flat(ring, seg) = 2^ring - 1 +
//! seg`) is exactly a binary-heap layout: the children of flat index `i`
//! are `2i + 1` and `2i + 2`, and its parent is `(i - 1) / 2`. [`HGrid`]
//! exploits that to keep, for every cell *and every subtree of cells*,
//!
//! * open-capacity counts per out-degree class (how many hosts with `c`
//!   children still accept attachments), and
//! * a nearest-representative summary: the minimum source-to-host delay
//!   over the subtree's open hosts.
//!
//! Both are maintained incrementally in `O(classes + rings)` per cell
//! update, and power [`HGrid::best_open_parent`] — a best-first,
//! lower-bound-pruned search that provably returns the *same* answer a
//! linear scan over all cells returns (the differential parity suite in
//! `crates/geom/tests/hgrid_parity.rs` pins this bit for bit).
//!
//! # The lower bound
//!
//! The attach cost of an open host `h` for a query point `q` is
//! `delay(h) + |q - pos(h)|`. Every host bucketed in the subtree rooted at
//! node `(ring, seg)` lies inside the sector region
//!
//! ```text
//! S(ring, seg) = { (r, θ) : r ≥ inner(ring),  θ ∈ [seg·w, (seg+1)·w] },
//! w = 2π / 2^ring
//! ```
//!
//! (radially *unbounded outward*: grid assignment clamps out-of-disk radii
//! to the outermost ring, so a subtree always extends to infinity). With
//! `dist(q, S)` a geometric lower bound on `|q - pos(h)|` and `min_delay`
//! the subtree's delay summary,
//!
//! ```text
//! lb = (min_delay + dist(q, S)) · (1 - 1e-12)
//! ```
//!
//! under-estimates every attach cost in the subtree. The multiplicative
//! guard absorbs floating-point slop in the sector distance (boundary
//! hosts can be assigned a cell whose computed wedge excludes their
//! rounded angle by a few ulp), so a subtree is pruned only when `lb`
//! *strictly* exceeds the best cost found so far — which means no host in
//! it can beat, or even tie, the final answer, and the scan's
//! deterministic tie-breaking (lowest cost, then lowest cell index, then
//! earliest list position) is preserved exactly.
//!
//! # Examples
//!
//! ```
//! use omt_geom::{HGrid, Point2};
//!
//! // Two rings: cells 0 (disk), 1-2 (ring 1), 3-6 (ring 2).
//! let mut hg = HGrid::new(2, 4, &[0.0, 0.25, 0.5]);
//! // One open host with 1 child in cell 4, delay 0.7.
//! hg.set_cell(4, &[0, 1, 0, 0], 0.7);
//! assert_eq!(hg.cell_total(4), 1);
//! assert_eq!(hg.subtree_total_in(0, 4), 1);
//! // Best-first query: the scan closure rates cell 4's host.
//! let q = Point2::new([0.3, 0.4]);
//! let best = hg.best_open_parent(&q, 4, |cell| (cell == 4).then_some((0.9, "host")), None);
//! assert_eq!(best, Some((0.9, 4, "host")));
//! ```

use core::f64::consts::TAU;

use crate::point::Point2;
use crate::polar::normalize_angle;
use crate::region::{ConvexPolygon, Region};

/// Multiplicative guard applied to every lower bound so floating-point
/// slop in the sector distance can never manufacture a false prune.
const LB_GUARD: f64 = 1.0 - 1e-12;

/// Angular slack (relative to the wedge width) under which a query is
/// treated as inside the wedge, falling back to the always-valid radial
/// bound instead of the boundary-ray distance.
const WEDGE_SLACK: f64 = 1e-9;

/// Whether the `OMT_HGRID` environment variable asks for the hierarchical
/// index (`1` or `true`, case-insensitive). Consumers read this once at
/// construction so a process-wide setting turns every parent search in a
/// test campaign through the index.
pub fn env_enabled() -> bool {
    std::env::var("OMT_HGRID")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// One pruned subtree from an audited [`HGrid::best_open_parent`] query:
/// the node, the lower bound that excluded it, and the best cost at the
/// moment of pruning. The no-false-prune property test asserts every open
/// host under `node` costs at least `lower_bound` and strictly more than
/// the query's final answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneRecord {
    /// Flat index of the pruned subtree's root node.
    pub node: usize,
    /// The guarded lower bound computed for the subtree.
    pub lower_bound: f64,
    /// The best attach cost known when the subtree was pruned.
    pub best_at_prune: f64,
}

/// Hierarchical capacity-summary index over the cells of a polar grid.
///
/// Two maintenance styles exist and must not be mixed on one instance:
///
/// * [`set_cell`](HGrid::set_cell) re-declares a cell's full per-class
///   census and min-delay summary (the dynamic-overlay style: the caller
///   rescans its per-cell open list at each mutation);
/// * [`class_add`](HGrid::class_add) / [`class_remove`](HGrid::class_remove)
///   apply count-only deltas and leave the delay summaries untouched (the
///   protocol-shadow style, where only capacity counts are tracked).
#[derive(Clone, Debug, PartialEq)]
pub struct HGrid {
    rings: u32,
    classes: usize,
    cells: usize,
    /// Inner radius of each ring (`ring_inner[0] == 0`).
    ring_inner: Vec<f64>,
    /// Per-cell open-host counts, `cells × classes` row-major.
    direct_counts: Vec<u32>,
    /// Per-subtree open-host counts, same layout.
    sub_counts: Vec<u32>,
    /// Per-cell minimum open-host delay (`+inf` when the cell is empty).
    direct_min: Vec<f64>,
    /// Per-subtree minimum open-host delay.
    sub_min: Vec<f64>,
}

impl HGrid {
    /// Creates an empty index for a grid of `rings + 1` ring levels
    /// (level 0 is the inner disk) and `classes` out-degree classes.
    /// `ring_inner[r]` is the inner radius of ring `r`; `ring_inner[0]`
    /// must be `0`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, `ring_inner.len() != rings + 1`, or the
    /// radii are not finite, non-negative, and non-decreasing from zero.
    pub fn new(rings: u32, classes: usize, ring_inner: &[f64]) -> Self {
        assert!(classes > 0, "need at least one degree class");
        assert!(rings < 62, "ring count {rings} overflows the flat layout");
        assert_eq!(
            ring_inner.len(),
            rings as usize + 1,
            "need one inner radius per ring level"
        );
        assert_eq!(ring_inner[0], 0.0, "the inner disk starts at radius 0");
        for w in ring_inner.windows(2) {
            assert!(
                w[0].is_finite() && w[1].is_finite() && 0.0 <= w[0] && w[0] <= w[1],
                "ring radii must be finite, non-negative, and non-decreasing"
            );
        }
        let cells = ((1u64 << (rings + 1)) - 1) as usize;
        Self {
            rings,
            classes,
            cells,
            ring_inner: ring_inner.to_vec(),
            direct_counts: vec![0; cells * classes],
            sub_counts: vec![0; cells * classes],
            direct_min: vec![f64::INFINITY; cells],
            sub_min: vec![f64::INFINITY; cells],
        }
    }

    /// Number of ring levels minus one (the deepest ring index).
    pub fn rings(&self) -> u32 {
        self.rings
    }

    /// Number of out-degree classes tracked.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Total number of cells (`2^(rings+1) - 1`).
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Re-declares `cell`'s census: `counts[c]` open hosts of out-degree
    /// class `c`, with `min_delay` the minimum delay among them
    /// (`+inf` for an empty cell). `O(classes + rings)`.
    ///
    /// # Panics
    ///
    /// Panics on a bad cell index, a `counts` length mismatch, or a
    /// negative/NaN `min_delay`.
    pub fn set_cell(&mut self, cell: usize, counts: &[u32], min_delay: f64) {
        assert!(cell < self.cells, "cell {cell} out of range");
        assert_eq!(counts.len(), self.classes, "one count per degree class");
        assert!(min_delay >= 0.0, "delays are non-negative");
        let base = cell * self.classes;
        self.direct_counts[base..base + self.classes].copy_from_slice(counts);
        self.direct_min[cell] = min_delay;
        self.refold_path(cell);
    }

    /// Count-only delta: one more open host of class `class` in `cell`.
    /// Leaves the delay summaries untouched. `O(rings)`.
    pub fn class_add(&mut self, cell: usize, class: usize) {
        assert!(cell < self.cells && class < self.classes);
        self.direct_counts[cell * self.classes + class] += 1;
        let mut node = cell;
        loop {
            self.sub_counts[node * self.classes + class] += 1;
            if node == 0 {
                break;
            }
            node = (node - 1) / 2;
        }
    }

    /// Count-only delta: one fewer open host of class `class` in `cell`.
    ///
    /// # Panics
    ///
    /// Panics if the tracked count is already zero (a desynchronized
    /// caller).
    pub fn class_remove(&mut self, cell: usize, class: usize) {
        assert!(cell < self.cells && class < self.classes);
        let slot = cell * self.classes + class;
        assert!(self.direct_counts[slot] > 0, "count underflow in {cell}");
        self.direct_counts[slot] -= 1;
        let mut node = cell;
        loop {
            self.sub_counts[node * self.classes + class] -= 1;
            if node == 0 {
                break;
            }
            node = (node - 1) / 2;
        }
    }

    /// Open hosts bucketed directly in `cell`, all classes.
    pub fn cell_total(&self, cell: usize) -> u64 {
        self.cell_total_in(cell, self.classes)
    }

    /// Open hosts bucketed directly in `cell` with class below `cap`.
    pub fn cell_total_in(&self, cell: usize, cap: usize) -> u64 {
        let base = cell * self.classes;
        self.direct_counts[base..base + cap.min(self.classes)]
            .iter()
            .map(|&c| u64::from(c))
            .sum()
    }

    /// Open hosts in the subtree rooted at `node` with class below `cap`.
    pub fn subtree_total_in(&self, node: usize, cap: usize) -> u64 {
        let base = node * self.classes;
        self.sub_counts[base..base + cap.min(self.classes)]
            .iter()
            .map(|&c| u64::from(c))
            .sum()
    }

    /// The guarded lower bound on any attach cost in the subtree rooted at
    /// `node`, for a query at `q` (in grid-centered coordinates): subtree
    /// min delay plus the distance from `q` to the subtree's sector
    /// region, scaled by the conservative guard. `+inf` when the subtree
    /// has no delay summary.
    pub fn subtree_lower_bound(&self, node: usize, q: &Point2) -> f64 {
        let min_delay = self.sub_min[node];
        if min_delay == f64::INFINITY {
            return f64::INFINITY;
        }
        (min_delay + self.sector_distance(node, q)) * LB_GUARD
    }

    /// Best-first, lower-bound-pruned search for the cheapest open parent.
    ///
    /// `scan` rates one cell: it returns the cell's best candidate as
    /// `(attach_cost, payload)` — breaking in-cell ties by earliest list
    /// position — or `None` when no eligible candidate exists (exclusions
    /// live in the closure; the summaries still count excluded hosts, so
    /// every bound stays a conservative under-estimate). `cap` restricts
    /// the capacity counts consulted to classes below it.
    ///
    /// Returns the overall winner as `(cost, cell, payload)`, minimal by
    /// `(cost, cell)` exactly as a linear scan over all cells in flat
    /// order would choose it. When `audit` is given, every bound-pruned
    /// subtree is recorded (count-empty skips are exact, not heuristic,
    /// and are not recorded).
    pub fn best_open_parent<P, F>(
        &self,
        q: &Point2,
        cap: usize,
        mut scan: F,
        mut audit: Option<&mut Vec<PruneRecord>>,
    ) -> Option<(f64, usize, P)>
    where
        F: FnMut(usize) -> Option<(f64, P)>,
    {
        let mut best: Option<(f64, usize, P)> = None;
        self.visit(0, q, cap, &mut scan, &mut best, &mut audit);
        best
    }

    fn visit<P, F>(
        &self,
        node: usize,
        q: &Point2,
        cap: usize,
        scan: &mut F,
        best: &mut Option<(f64, usize, P)>,
        audit: &mut Option<&mut Vec<PruneRecord>>,
    ) where
        F: FnMut(usize) -> Option<(f64, P)>,
    {
        if self.subtree_total_in(node, cap) == 0 {
            return;
        }
        if let Some((best_cost, _, _)) = best {
            let lb = self.subtree_lower_bound(node, q);
            // Strict: an equal-bound subtree could still hold an
            // equal-cost host in a lower cell, which wins the tie.
            if lb > *best_cost {
                if let Some(records) = audit {
                    records.push(PruneRecord {
                        node,
                        lower_bound: lb,
                        best_at_prune: *best_cost,
                    });
                }
                return;
            }
        }
        if self.cell_total_in(node, cap) > 0 {
            if let Some((cost, payload)) = scan(node) {
                let replace = match best {
                    None => true,
                    Some((bc, bcell, _)) => cost < *bc || (cost == *bc && node < *bcell),
                };
                if replace {
                    *best = Some((cost, node, payload));
                }
            }
        }
        let left = 2 * node + 1;
        if left >= self.cells {
            return;
        }
        let right = left + 1;
        // Best-first: the nearer child tightens the bound before the
        // farther child is considered. Order affects pruning only, never
        // the result.
        let (first, second) =
            if self.subtree_lower_bound(left, q) <= self.subtree_lower_bound(right, q) {
                (left, right)
            } else {
                (right, left)
            };
        self.visit(first, q, cap, scan, best, audit);
        self.visit(second, q, cap, scan, best, audit);
    }

    /// Distance from `q` to the sector region of the subtree rooted at
    /// `node`: the wedge of its angular extent, radially unbounded
    /// outward from the ring's inner radius.
    fn sector_distance(&self, node: usize, q: &Point2) -> f64 {
        let (ring, seg) = unflatten(node);
        if ring == 0 {
            return 0.0; // the root region is the whole plane
        }
        let r_in = self.ring_inner[ring as usize];
        let segments = 1u64 << ring;
        let width = TAU / segments as f64;
        let lo = seg as f64 * width;
        let hi = if seg + 1 == segments { TAU } else { lo + width };
        let radius = q.norm();
        let theta = normalize_angle(q.angle());
        // The radial gap is a valid lower bound for ANY query (every
        // region point has radius >= r_in), so near-boundary queries can
        // safely take this branch even when rounding flips which side of
        // the wedge they are on.
        let slack = width * WEDGE_SLACK;
        if theta >= lo - slack && theta <= hi + slack {
            return (r_in - radius).max(0.0);
        }
        let hi_ray = if seg + 1 == segments { 0.0 } else { hi };
        ray_distance(q, lo, r_in).min(ray_distance(q, hi_ray, r_in))
    }

    /// Recomputes the subtree aggregates along the path from `node` to
    /// the root from each node's direct census and its children's
    /// (already consistent) subtree aggregates.
    fn refold_path(&mut self, mut node: usize) {
        loop {
            let base = node * self.classes;
            let left = 2 * node + 1;
            let mut min_delay = self.direct_min[node];
            for class in 0..self.classes {
                let mut total = self.direct_counts[base + class];
                if left < self.cells {
                    total += self.sub_counts[left * self.classes + class];
                    total += self.sub_counts[(left + 1) * self.classes + class];
                }
                self.sub_counts[base + class] = total;
            }
            if left < self.cells {
                min_delay = min_delay
                    .min(self.sub_min[left])
                    .min(self.sub_min[left + 1]);
            }
            self.sub_min[node] = min_delay;
            if node == 0 {
                break;
            }
            node = (node - 1) / 2;
        }
    }

    /// Checks that the capacity counts of `self` and `other` agree
    /// (geometry and class structure included); the delay summaries are
    /// ignored, matching count-only maintenance.
    ///
    /// # Errors
    ///
    /// Returns a description of the first disagreement.
    pub fn same_counts(&self, other: &HGrid) -> Result<(), String> {
        if self.rings != other.rings || self.classes != other.classes {
            return Err(format!(
                "shape mismatch: {}r/{}c vs {}r/{}c",
                self.rings, self.classes, other.rings, other.classes
            ));
        }
        for (i, (a, b)) in self
            .direct_counts
            .iter()
            .zip(&other.direct_counts)
            .enumerate()
        {
            if a != b {
                return Err(format!(
                    "direct count mismatch at cell {} class {}: {a} vs {b}",
                    i / self.classes,
                    i % self.classes
                ));
            }
        }
        for (i, (a, b)) in self.sub_counts.iter().zip(&other.sub_counts).enumerate() {
            if a != b {
                return Err(format!(
                    "subtree count mismatch at node {} class {}: {a} vs {b}",
                    i / self.classes,
                    i % self.classes
                ));
            }
        }
        Ok(())
    }

    /// Asserts that `self` and a from-scratch rebuild `other` agree on
    /// every summary: counts *and* delay minima (the latter compared
    /// exactly — incremental refolds evaluate the same fold expression a
    /// rebuild does, so they must match bit for bit).
    ///
    /// # Panics
    ///
    /// Panics with the first disagreement.
    pub fn assert_same(&self, other: &HGrid) {
        if let Err(e) = self.same_counts(other) {
            panic!("hgrid count reconciliation failed: {e}");
        }
        assert_eq!(
            self.ring_inner, other.ring_inner,
            "hgrid ring radii diverged"
        );
        for (i, (a, b)) in self.direct_min.iter().zip(&other.direct_min).enumerate() {
            assert!(a == b, "direct min mismatch at cell {i}: {a} vs {b}");
        }
        for (i, (a, b)) in self.sub_min.iter().zip(&other.sub_min).enumerate() {
            assert!(a == b, "subtree min mismatch at node {i}: {a} vs {b}");
        }
    }
}

/// Distance from `q` to the truncated ray `{ t·(cos θ, sin θ) : t ≥ r_in }`.
fn ray_distance(q: &Point2, theta: f64, r_in: f64) -> f64 {
    let u = Point2::new([theta.cos(), theta.sin()]);
    let t = q.dot(&u).max(r_in);
    q.distance(&Point2::new([u.x() * t, u.y() * t]))
}

/// Inverse of the flat cell index: `(ring, seg)`.
fn unflatten(idx: usize) -> (u32, u64) {
    let v = idx as u64 + 1;
    let ring = 63 - v.leading_zeros();
    (ring, v - (1u64 << ring))
}

/// The deepest-interior point (pole of inaccessibility) of a convex
/// polygon, to within `tolerance`: the center of the largest inscribed
/// circle, found by the polylabel-style best-first quadtree search. This
/// is the representative-placement mode the generalization workload uses
/// for arbitrary convex regions with off-center sources: the returned
/// point maximizes the clearance to the region boundary, so a source (or
/// cell representative) placed there keeps the grid's active area
/// balanced.
///
/// For a convex polygon the interior depth of a point is exactly the
/// minimum signed distance to the edge lines, which is 1-Lipschitz — so
/// `depth(center) + half_diagonal` upper-bounds the depth anywhere in a
/// square search cell, and cells whose bound cannot beat the incumbent
/// are pruned (the same bound-pruning pattern [`HGrid`] uses, with the
/// inequality flipped for maximization).
///
/// `tolerance` is the accepted depth shortfall of the returned point.
/// Polygons with two parallel binding edges (any true trapezoid) have a
/// *plateau* — a whole segment of maximal-depth points — and bound
/// pruning cannot separate plateau cells from each other, so the work
/// scales as O(plateau length / tolerance). Pick the coarsest tolerance
/// the caller can stand (placement workloads use `1e-6`); nanometre
/// tolerances on plateaued shapes cost gigabytes, not nanometres.
///
/// # Panics
///
/// Panics if `tolerance` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use omt_geom::{deepest_interior, ConvexPolygon, Point2};
///
/// let hex = ConvexPolygon::regular(6, Point2::new([2.0, -1.0]), 1.0);
/// let pole = deepest_interior(&hex, 1e-9);
/// assert!(pole.distance(&Point2::new([2.0, -1.0])) < 1e-6);
/// ```
pub fn deepest_interior(poly: &ConvexPolygon, tolerance: f64) -> Point2 {
    assert!(
        tolerance > 0.0 && tolerance.is_finite(),
        "tolerance must be positive and finite"
    );
    let vertices = poly.vertices();
    let depth = |p: &Point2| -> f64 {
        let n = vertices.len();
        let mut d = f64::INFINITY;
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let e = b - a;
            let len = e.norm();
            // Signed distance to the edge line; positive inside (CCW).
            d = d.min((e.x() * (p.y() - a.y()) - e.y() * (p.x() - a.x())) / len);
        }
        d
    };
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for v in vertices {
        min_x = min_x.min(v.x());
        min_y = min_y.min(v.y());
        max_x = max_x.max(v.x());
        max_y = max_y.max(v.y());
    }
    /// One square search cell, ordered by its depth upper bound (ties
    /// broken on coordinates so the heap order — and hence the returned
    /// pole — is deterministic).
    #[derive(PartialEq)]
    struct Cand {
        score: f64,
        x: f64,
        y: f64,
        half: f64,
    }
    impl Eq for Cand {}
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            self.score
                .total_cmp(&other.score)
                .then(self.x.total_cmp(&other.x))
                .then(self.y.total_cmp(&other.y))
        }
    }
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut best_point = poly.reference_point();
    let mut best_depth = depth(&best_point);
    let half = ((max_x - min_x).max(max_y - min_y)) / 2.0;
    let mut heap = std::collections::BinaryHeap::new();
    let root = Point2::new([(min_x + max_x) / 2.0, (min_y + max_y) / 2.0]);
    heap.push(Cand {
        score: depth(&root) + half * core::f64::consts::SQRT_2,
        x: root.x(),
        y: root.y(),
        half,
    });
    while let Some(cand) = heap.pop() {
        if cand.score - best_depth <= tolerance {
            break; // the max-heap invariant: nothing left can improve
        }
        let h = cand.half / 2.0;
        for (dx, dy) in [(-h, -h), (h, -h), (-h, h), (h, h)] {
            let center = Point2::new([cand.x + dx, cand.y + dy]);
            let d = depth(&center);
            if d > best_depth {
                best_depth = d;
                best_point = center;
            }
            let score = d + h * core::f64::consts::SQRT_2;
            if score - best_depth > tolerance {
                heap.push(Cand {
                    score,
                    x: center.x(),
                    y: center.y(),
                    half: h,
                });
            }
        }
    }
    best_point
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_ring_grid() -> HGrid {
        HGrid::new(2, 3, &[0.0, 0.3, 0.6])
    }

    #[test]
    fn counts_fold_up_the_heap() {
        let mut hg = two_ring_grid();
        hg.set_cell(3, &[1, 0, 2], 0.5);
        hg.set_cell(6, &[0, 1, 0], 0.2);
        assert_eq!(hg.cell_total(3), 3);
        assert_eq!(hg.subtree_total_in(1, 3), 3);
        assert_eq!(hg.subtree_total_in(2, 3), 1);
        assert_eq!(hg.subtree_total_in(0, 3), 4);
        // Capped totals exclude high classes.
        assert_eq!(hg.subtree_total_in(0, 1), 1);
        assert_eq!(hg.subtree_total_in(0, 2), 2);
        // Min delay folds too.
        assert_eq!(hg.sub_min[0], 0.2);
        assert_eq!(hg.sub_min[1], 0.5);
        // Clearing a cell restores emptiness.
        hg.set_cell(3, &[0, 0, 0], f64::INFINITY);
        assert_eq!(hg.subtree_total_in(0, 3), 1);
        assert_eq!(hg.sub_min[1], f64::INFINITY);
    }

    #[test]
    fn class_deltas_match_set_cell() {
        let mut a = two_ring_grid();
        let mut b = two_ring_grid();
        a.class_add(4, 0);
        a.class_add(4, 2);
        a.class_add(2, 1);
        a.class_remove(4, 0);
        b.set_cell(4, &[0, 0, 1], f64::INFINITY);
        b.set_cell(2, &[0, 1, 0], f64::INFINITY);
        a.same_counts(&b).unwrap();
    }

    #[test]
    #[should_panic(expected = "count underflow")]
    fn removing_from_empty_cell_panics() {
        two_ring_grid().class_remove(0, 0);
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let mut incremental = two_ring_grid();
        for (cell, counts, min) in [
            (0, [1u32, 0, 0], 0.9),
            (3, [0, 2, 0], 0.4),
            (3, [1, 1, 0], 0.3), // overwrite
            (5, [0, 0, 1], 0.8),
        ] {
            incremental.set_cell(cell, &counts, min);
        }
        let mut fresh = two_ring_grid();
        fresh.set_cell(0, &[1, 0, 0], 0.9);
        fresh.set_cell(3, &[1, 1, 0], 0.3);
        fresh.set_cell(5, &[0, 0, 1], 0.8);
        incremental.assert_same(&fresh);
    }

    #[test]
    fn sector_distance_basics() {
        let hg = two_ring_grid();
        // Root region is everything.
        assert_eq!(hg.sector_distance(0, &Point2::new([5.0, -3.0])), 0.0);
        // Query inside ring-2 cell 3's wedge (angle ~0), inside radially.
        let q = Point2::new([0.7, 0.05]);
        assert_eq!(hg.sector_distance(3, &q), 0.0);
        // Same angle, radially inside the ring: radial gap.
        let q = Point2::new([0.2, 0.0]);
        assert!((hg.sector_distance(3, &q) - 0.4).abs() < 1e-12);
        // Opposite wedge: distance through the plane, at most |q| + r_in.
        let q = Point2::new([-0.5, -0.001]);
        let d = hg.sector_distance(3, &q);
        assert!(d > 0.5 && d <= 0.5 + 0.6 + 1e-9, "distance {d}");
        // The bound never exceeds the true distance to a contained point.
        let host = Point2::new([0.9_f64.cos() * 0.7, 0.9_f64.sin() * 0.7]);
        let flat = |ring: u32, seg: u64| ((1u64 << ring) - 1 + seg) as usize;
        let cell = flat(2, (normalize_angle(host.angle()) / TAU * 4.0) as u64);
        for q in [
            Point2::new([-1.0, 0.4]),
            Point2::new([0.0, -0.9]),
            Point2::ORIGIN,
            Point2::new([2.0, 2.0]),
        ] {
            assert!(hg.sector_distance(cell, &q) <= q.distance(&host) + 1e-12);
        }
    }

    #[test]
    fn query_is_a_linear_scan_with_pruning() {
        // Synthetic census: hosts as (cell, delay, position).
        let mut hg = two_ring_grid();
        let hosts = [
            (3usize, 0.40, Point2::new([0.7, 0.1])),
            (4usize, 0.35, Point2::new([0.05, 0.8])),
            (6usize, 0.90, Point2::new([0.4, -0.6])),
            (0usize, 0.85, Point2::new([0.1, 0.05])),
        ];
        for (cell, delay, _) in hosts {
            let mut counts = [0u32; 3];
            counts[1] = 1;
            hg.set_cell(cell, &counts, delay);
        }
        // (cell 4 holds one host at delay .35 etc.)
        hg.set_cell(4, &[0, 1, 0], 0.35);
        let q = Point2::new([0.6, 0.2]);
        let cost_of = |cell: usize| {
            hosts
                .iter()
                .filter(|(c, _, _)| *c == cell)
                .map(|(_, d, p)| (d + p.distance(&q), cell))
                .next()
        };
        let mut audit = Vec::new();
        let got = hg.best_open_parent(
            &q,
            3,
            |cell| cost_of(cell).map(|(c, _)| (c, cell)),
            Some(&mut audit),
        );
        // Brute force over all hosts.
        let want = hosts
            .iter()
            .map(|(cell, d, p)| (d + p.distance(&q), *cell))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .unwrap();
        let (cost, cell, payload) = got.unwrap();
        assert_eq!((cost, cell), want);
        assert_eq!(payload, cell);
        // Every recorded prune genuinely excludes its subtree.
        for rec in &audit {
            assert!(rec.lower_bound > rec.best_at_prune);
            for (c, d, p) in hosts {
                let mut anc = c;
                let covered = loop {
                    if anc == rec.node {
                        break true;
                    }
                    if anc == 0 {
                        break false;
                    }
                    anc = (anc - 1) / 2;
                };
                if covered {
                    let cost = d + p.distance(&q);
                    assert!(cost >= rec.lower_bound && cost > want.0);
                }
            }
        }
    }

    #[test]
    fn empty_index_returns_none() {
        let hg = two_ring_grid();
        let r: Option<(f64, usize, ())> =
            hg.best_open_parent(&Point2::ORIGIN, 3, |_| panic!("must not scan"), None);
        assert!(r.is_none());
    }

    #[test]
    fn deepest_interior_of_symmetric_shapes_is_the_center() {
        let square = ConvexPolygon::new(vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([2.0, 2.0]),
            Point2::new([0.0, 2.0]),
        ])
        .unwrap();
        let pole = deepest_interior(&square, 1e-9);
        assert!(pole.distance(&Point2::new([1.0, 1.0])) < 1e-6);
        let hex = ConvexPolygon::regular(6, Point2::new([-3.0, 0.5]), 2.0);
        let pole = deepest_interior(&hex, 1e-9);
        assert!(pole.distance(&Point2::new([-3.0, 0.5])) < 1e-6);
    }

    #[test]
    fn deepest_interior_beats_the_centroid_on_skewed_shapes() {
        // A sharp right trapezoid: the centroid is pulled toward the long
        // edge, while the pole of inaccessibility sits deeper.
        let trap = ConvexPolygon::new(vec![
            Point2::new([0.0, 0.0]),
            Point2::new([4.0, 0.0]),
            Point2::new([4.0, 0.2]),
            Point2::new([0.0, 1.6]),
        ])
        .unwrap();
        let pole = deepest_interior(&trap, 1e-9);
        assert!(trap.contains(&pole));
        let depth = |p: &Point2| {
            let vs = trap.vertices();
            (0..vs.len())
                .map(|i| {
                    let a = vs[i];
                    let b = vs[(i + 1) % vs.len()];
                    let e = b - a;
                    (e.x() * (p.y() - a.y()) - e.y() * (p.x() - a.x())) / e.norm()
                })
                .fold(f64::INFINITY, f64::min)
        };
        assert!(depth(&pole) >= depth(&trap.reference_point()) - 1e-9);
        assert!(depth(&pole) > 0.0);
    }

    #[test]
    fn env_gate_parses_common_spellings() {
        // Only parse logic is tested here (the variable itself is owned
        // by the test runner's environment).
        let on = |v: &str| v == "1" || v.eq_ignore_ascii_case("true");
        assert!(on("1") && on("true") && on("TRUE"));
        assert!(!on("0") && !on("") && !on("yes"));
    }
}
