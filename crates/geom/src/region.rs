//! Convex regions: containment tests and uniform sampling.
//!
//! The asymptotic-optimality result of the paper holds for points uniformly
//! distributed in any convex region (Section IV-C). This module provides the
//! regions used across the experiment suite — disks, balls, boxes, convex
//! polygons, and annuli (the last one deliberately *non*-convex, as a
//! counterexample generator for tests).

use omt_rng::Rng;

use crate::point::{Point, Point2, Point3};
use crate::sample;

/// A region of `D`-dimensional space that supports containment tests and
/// uniform sampling.
///
/// The trait is object-safe: samplers take `&mut dyn Rng` so heterogeneous
/// collections of regions can share one RNG.
pub trait Region<const D: usize> {
    /// Whether `p` lies inside the region (boundary inclusion is
    /// implementation-defined and irrelevant for continuous sampling).
    fn contains(&self, p: &Point<D>) -> bool;

    /// Draws a point uniformly at random from the region.
    fn sample(&self, rng: &mut dyn Rng) -> Point<D>;

    /// A point inside the region suitable as a default source placement.
    fn reference_point(&self) -> Point<D>;

    /// Radius of a ball centered at [`Region::reference_point`] that contains
    /// the region. Used for sanity checks and bound scaling; it need not be
    /// tight, but implementations here return the exact circumradius.
    fn circumradius(&self) -> f64;

    /// Draws `n` points uniformly at random.
    fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<Point<D>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The ball `{p : ‖p - center‖ ≤ radius}` in `D` dimensions.
///
/// # Examples
///
/// ```
/// use omt_geom::{Ball, Point2, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// let disk = Ball::<2>::unit();
/// let mut rng = SmallRng::seed_from_u64(7);
/// let pts = disk.sample_n(&mut rng, 100);
/// assert!(pts.iter().all(|p| disk.contains(p)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ball<const D: usize> {
    center: Point<D>,
    radius: f64,
}

/// The unit disk — the paper's primary experimental region.
pub type Disk = Ball<2>;

impl<const D: usize> Ball<D> {
    /// Creates a ball.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point<D>, radius: f64) -> Self {
        assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        Self { center, radius }
    }

    /// The unit ball centered at the origin.
    pub fn unit() -> Self {
        Self {
            center: Point::ORIGIN,
            radius: 1.0,
        }
    }

    /// The center point.
    pub const fn center(&self) -> Point<D> {
        self.center
    }

    /// The radius.
    pub const fn radius(&self) -> f64 {
        self.radius
    }
}

impl<const D: usize> Region<D> for Ball<D> {
    fn contains(&self, p: &Point<D>) -> bool {
        p.distance_squared(&self.center) <= self.radius * self.radius
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point<D> {
        self.center + sample::uniform_in_ball::<D>(rng, self.radius)
    }

    fn reference_point(&self) -> Point<D> {
        self.center
    }

    fn circumradius(&self) -> f64 {
        self.radius
    }
}

/// An axis-aligned box `[min, max]` in `D` dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoxRegion<const D: usize> {
    min: Point<D>,
    max: Point<D>,
}

impl<const D: usize> BoxRegion<D> {
    /// Creates a box from its minimum and maximum corners.
    ///
    /// # Panics
    ///
    /// Panics if `min[i] > max[i]` on any axis.
    pub fn new(min: Point<D>, max: Point<D>) -> Self {
        for i in 0..D {
            assert!(min[i] <= max[i], "inverted box extent on axis {i}");
        }
        Self { min, max }
    }

    /// The unit square/cube `[0, 1]^D`.
    pub fn unit() -> Self {
        Self {
            min: Point::ORIGIN,
            max: Point::new([1.0; D]),
        }
    }

    /// Minimum corner.
    pub const fn min(&self) -> Point<D> {
        self.min
    }

    /// Maximum corner.
    pub const fn max(&self) -> Point<D> {
        self.max
    }
}

impl<const D: usize> Region<D> for BoxRegion<D> {
    fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point<D> {
        sample::uniform_in_box(rng, &self.min, &self.max)
    }

    fn reference_point(&self) -> Point<D> {
        self.min.midpoint(&self.max)
    }

    fn circumradius(&self) -> f64 {
        self.min.distance(&self.max) * 0.5
    }
}

/// A convex polygon in the plane, given by vertices in counter-clockwise
/// order. Sampling uses an area-weighted fan triangulation from the first
/// vertex (exact for convex polygons).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point2>,
    /// Cumulative triangle areas for the fan (for sampling).
    cumulative_areas: Vec<f64>,
    centroid: Point2,
}

impl ConvexPolygon {
    /// Creates a convex polygon from counter-clockwise vertices.
    ///
    /// # Errors
    ///
    /// Returns an error message if fewer than 3 vertices are given, the
    /// vertices are not in counter-clockwise convex position, or the polygon
    /// is degenerate (zero area).
    pub fn new(vertices: Vec<Point2>) -> Result<Self, String> {
        if vertices.len() < 3 {
            return Err(format!(
                "a polygon needs at least 3 vertices, got {}",
                vertices.len()
            ));
        }
        let n = vertices.len();
        for i in 0..n {
            let a = &vertices[i];
            let b = &vertices[(i + 1) % n];
            let c = &vertices[(i + 2) % n];
            if sample::triangle_signed_area(a, b, c) <= 0.0 {
                return Err(format!(
                    "vertices are not in counter-clockwise convex position at index {i}"
                ));
            }
        }
        let mut cumulative_areas = Vec::with_capacity(n - 2);
        let mut total = 0.0;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 1..n - 1 {
            let area = sample::triangle_signed_area(&vertices[0], &vertices[i], &vertices[i + 1]);
            total += area;
            let centroid = (vertices[0] + vertices[i] + vertices[i + 1]) / 3.0;
            cx += centroid.x() * area;
            cy += centroid.y() * area;
            cumulative_areas.push(total);
        }
        if total <= 0.0 {
            return Err("polygon has zero area".to_string());
        }
        Ok(Self {
            vertices,
            cumulative_areas,
            centroid: Point2::new([cx / total, cy / total]),
        })
    }

    /// A regular `n`-gon of the given circumradius centered at `center`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `radius <= 0`.
    pub fn regular(n: usize, center: Point2, radius: f64) -> Self {
        assert!(n >= 3, "a polygon needs at least 3 vertices");
        assert!(radius > 0.0, "radius must be positive");
        let vertices = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * core::f64::consts::TAU;
                center + Point2::new([radius * t.cos(), radius * t.sin()])
            })
            .collect();
        Self::new(vertices).expect("regular polygons are convex")
    }

    /// The vertices, counter-clockwise.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Total area.
    pub fn area(&self) -> f64 {
        *self
            .cumulative_areas
            .last()
            .expect("nonempty by construction")
    }
}

impl Region<2> for ConvexPolygon {
    fn contains(&self, p: &Point2) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = &self.vertices[i];
            let b = &self.vertices[(i + 1) % n];
            sample::triangle_signed_area(a, b, p) >= -1e-12
        })
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point2 {
        use omt_rng::RngExt;
        let total = self.area();
        let t: f64 = rng.random_range(0.0..total);
        let idx = self
            .cumulative_areas
            .partition_point(|&acc| acc <= t)
            .min(self.cumulative_areas.len() - 1);
        sample::uniform_in_triangle(
            rng,
            &self.vertices[0],
            &self.vertices[idx + 1],
            &self.vertices[idx + 2],
        )
    }

    fn reference_point(&self) -> Point2 {
        self.centroid
    }

    fn circumradius(&self) -> f64 {
        self.vertices
            .iter()
            .map(|v| v.distance(&self.centroid))
            .fold(0.0, f64::max)
    }
}

/// The annulus `{p : r_in ≤ ‖p - center‖ ≤ r_out}` — a deliberately
/// **non-convex** region (for `r_in > 0`), used by tests to probe behaviour
/// outside the theorem's hypotheses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Annulus {
    center: Point2,
    r_in: f64,
    r_out: f64,
}

impl Annulus {
    /// Creates an annulus.
    ///
    /// # Panics
    ///
    /// Panics if `r_in < 0` or `r_in > r_out`.
    pub fn new(center: Point2, r_in: f64, r_out: f64) -> Self {
        assert!(
            0.0 <= r_in && r_in <= r_out,
            "invalid annulus radii [{r_in}, {r_out}]"
        );
        Self {
            center,
            r_in,
            r_out,
        }
    }

    /// Inner radius.
    pub const fn r_in(&self) -> f64 {
        self.r_in
    }

    /// Outer radius.
    pub const fn r_out(&self) -> f64 {
        self.r_out
    }
}

impl Region<2> for Annulus {
    fn contains(&self, p: &Point2) -> bool {
        let d2 = p.distance_squared(&self.center);
        self.r_in * self.r_in <= d2 && d2 <= self.r_out * self.r_out
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point2 {
        use omt_rng::RngExt;
        // Inverse CDF on the squared radius for exact uniformity.
        let u: f64 = rng.random();
        let r2 = self.r_in * self.r_in + u * (self.r_out * self.r_out - self.r_in * self.r_in);
        let r = r2.sqrt();
        let theta = rng.random_range(0.0..core::f64::consts::TAU);
        self.center + Point2::new([r * theta.cos(), r * theta.sin()])
    }

    fn reference_point(&self) -> Point2 {
        // The center: note it is NOT inside the region when r_in > 0, which
        // is exactly the stress case tests want.
        self.center
    }

    fn circumradius(&self) -> f64 {
        self.r_out
    }
}

/// Convenience alias for boxed dynamic regions.
pub type DynRegion2 = Box<dyn Region<2>>;

/// Convenience alias for boxed dynamic 3-D regions.
pub type DynRegion3 = Box<dyn Region<3>>;

/// Offsets every sampled point of an inner region — used to test arbitrary
/// source placement (the source stays at the caller's chosen point while the
/// region shifts around it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Translated<R, const D: usize> {
    inner: R,
    offset: Point<D>,
}

impl<R: Region<D>, const D: usize> Translated<R, D> {
    /// Wraps `inner`, translating it by `offset`.
    pub fn new(inner: R, offset: Point<D>) -> Self {
        Self { inner, offset }
    }
}

impl<R: Region<D>, const D: usize> Region<D> for Translated<R, D> {
    fn contains(&self, p: &Point<D>) -> bool {
        self.inner.contains(&(*p - self.offset))
    }

    fn sample(&self, rng: &mut dyn Rng) -> Point<D> {
        self.inner.sample(rng) + self.offset
    }

    fn reference_point(&self) -> Point<D> {
        self.inner.reference_point() + self.offset
    }

    fn circumradius(&self) -> f64 {
        self.inner.circumradius()
    }
}

// Point3 is used in the doc-aliases below; silence the otherwise-unused
// import in builds without doctests.
#[allow(unused)]
type _Assert3 = Point3;

#[cfg(test)]
mod tests {
    use super::*;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn ball_contains_its_samples() {
        let ball = Ball::<3>::new(Point::new([1.0, 2.0, 3.0]), 0.5);
        let mut rng = rng();
        for p in ball.sample_n(&mut rng, 500) {
            assert!(ball.contains(&p));
        }
    }

    #[test]
    fn disk_alias_is_two_dimensional() {
        let d = Disk::unit();
        assert!(d.contains(&Point2::new([0.5, 0.5])));
        assert!(!d.contains(&Point2::new([1.0, 1.0])));
        assert_eq!(d.circumradius(), 1.0);
        assert_eq!(d.reference_point(), Point2::ORIGIN);
    }

    #[test]
    fn box_contains_its_samples() {
        let b = BoxRegion::new(Point::new([-1.0, 0.0]), Point::new([1.0, 2.0]));
        let mut rng = rng();
        for p in b.sample_n(&mut rng, 500) {
            assert!(b.contains(&p));
        }
        assert_eq!(b.reference_point(), Point2::new([0.0, 1.0]));
        assert!((b.circumradius() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn polygon_rejects_bad_input() {
        assert!(ConvexPolygon::new(vec![Point2::ORIGIN, Point2::new([1.0, 0.0])]).is_err());
        // Clockwise square.
        let cw = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([0.0, 1.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([1.0, 0.0]),
        ];
        assert!(ConvexPolygon::new(cw).is_err());
        // Non-convex (dart).
        let dart = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([0.5, 0.5]),
            Point2::new([0.0, 2.0]),
        ];
        assert!(ConvexPolygon::new(dart).is_err());
    }

    #[test]
    fn polygon_area_and_containment() {
        let square = ConvexPolygon::new(vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([2.0, 2.0]),
            Point2::new([0.0, 2.0]),
        ])
        .unwrap();
        assert!((square.area() - 4.0).abs() < 1e-12);
        assert!(square.contains(&Point2::new([1.0, 1.0])));
        assert!(!square.contains(&Point2::new([3.0, 1.0])));
        assert_eq!(square.reference_point(), Point2::new([1.0, 1.0]));
        let mut rng = rng();
        for p in square.sample_n(&mut rng, 500) {
            assert!(square.contains(&p));
        }
    }

    #[test]
    fn polygon_sampling_is_area_uniform() {
        // An L-shaped... no: convex only. Use a thin+wide triangle pair via a
        // right trapezoid and check the left half gets the right mass.
        let trap = ConvexPolygon::new(vec![
            Point2::new([0.0, 0.0]),
            Point2::new([2.0, 0.0]),
            Point2::new([2.0, 1.0]),
            Point2::new([0.0, 2.0]),
        ])
        .unwrap();
        let mut rng = rng();
        let n = 20_000;
        let left = trap
            .sample_n(&mut rng, n)
            .iter()
            .filter(|p| p.x() < 1.0)
            .count();
        // Area left of x=1: trapezoid with heights 2 and 1.5 -> 1.75 of 3.0.
        let frac = left as f64 / n as f64;
        assert!((frac - 1.75 / 3.0).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn regular_polygon() {
        let hex = ConvexPolygon::regular(6, Point2::new([1.0, 1.0]), 2.0);
        assert_eq!(hex.vertices().len(), 6);
        assert!((hex.circumradius() - 2.0).abs() < 1e-9);
        // Hexagon area = 3*sqrt(3)/2 * r^2.
        assert!((hex.area() - 1.5 * 3.0_f64.sqrt() * 4.0).abs() < 1e-9);
    }

    #[test]
    fn annulus_samples_respect_radii() {
        let a = Annulus::new(Point2::ORIGIN, 0.5, 1.0);
        let mut rng = rng();
        for p in a.sample_n(&mut rng, 500) {
            assert!(a.contains(&p));
            let r = p.norm();
            assert!((0.5..=1.0 + 1e-12).contains(&r));
        }
        assert!(!a.contains(&Point2::ORIGIN));
    }

    #[test]
    fn annulus_is_radially_uniform() {
        let a = Annulus::new(Point2::ORIGIN, 0.0, 1.0);
        let mut rng = rng();
        let n = 20_000;
        let inner = a
            .sample_n(&mut rng, n)
            .iter()
            .filter(|p| p.norm() <= core::f64::consts::FRAC_1_SQRT_2)
            .count();
        let frac = inner as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn translated_region() {
        let shifted = Translated::new(Disk::unit(), Point2::new([10.0, 0.0]));
        assert!(shifted.contains(&Point2::new([10.5, 0.0])));
        assert!(!shifted.contains(&Point2::new([0.0, 0.0])));
        assert_eq!(shifted.reference_point(), Point2::new([10.0, 0.0]));
        let mut rng = rng();
        for p in shifted.sample_n(&mut rng, 200) {
            assert!(shifted.contains(&p));
        }
    }

    #[test]
    fn regions_are_object_safe() {
        let regions: Vec<DynRegion2> = vec![
            Box::new(Disk::unit()),
            Box::new(BoxRegion::<2>::unit()),
            Box::new(Annulus::new(Point2::ORIGIN, 0.2, 0.9)),
        ];
        let mut rng = rng();
        for r in &regions {
            let p = r.sample(&mut rng);
            assert!(r.contains(&p));
        }
    }
}
