//! Convex hulls and point-set diameters.
//!
//! The minimum-diameter variant of the tree problem (discussed in the
//! paper's conclusion) needs the *diameter of the point set* — the largest
//! pairwise distance — as its lower bound: the two farthest points must be
//! connected through any spanning tree. Computed exactly in `O(n log n)`
//! via Andrew's monotone chain hull and rotating calipers.

use crate::point::Point2;

/// The convex hull of a 2-D point set in counter-clockwise order, without
/// repetition of the first vertex. Collinear points on the boundary are
/// dropped. Returns all distinct inputs if fewer than 3 points remain
/// (degenerate hulls).
///
/// # Examples
///
/// ```
/// use omt_geom::{hull::convex_hull, Point2};
///
/// let pts = vec![
///     Point2::new([0.0, 0.0]),
///     Point2::new([2.0, 0.0]),
///     Point2::new([1.0, 0.5]), // interior
///     Point2::new([2.0, 2.0]),
///     Point2::new([0.0, 2.0]),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// ```
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.x().total_cmp(&b.x()).then(a.y().total_cmp(&b.y())));
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let cross = |o: &Point2, a: &Point2, b: &Point2| {
        (a.x() - o.x()) * (b.y() - o.y()) - (a.y() - o.y()) * (b.x() - o.x())
    };
    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for p in &pts {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(*p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for p in pts.iter().rev() {
        while hull.len() >= lower_len
            && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(*p);
    }
    hull.pop(); // the first point is repeated at the end
                // Fully collinear inputs can collapse to a 2-point "hull" with a
                // duplicate; dedup defensively.
    hull.dedup();
    hull
}

/// The diameter of a point set — the largest pairwise Euclidean distance —
/// and a pair of points attaining it, via rotating calipers over the
/// convex hull. `O(n log n)`.
///
/// Returns `None` for fewer than 2 points.
///
/// # Examples
///
/// ```
/// use omt_geom::{hull::diameter, Point2};
///
/// let pts = vec![
///     Point2::new([0.0, 0.0]),
///     Point2::new([3.0, 4.0]),
///     Point2::new([1.0, 1.0]),
/// ];
/// let (d, a, b) = diameter(&pts).unwrap();
/// assert_eq!(d, 5.0);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
pub fn diameter(points: &[Point2]) -> Option<(f64, Point2, Point2)> {
    let hull = convex_hull(points);
    let m = hull.len();
    match m {
        0 => None,
        1 => {
            if points.len() >= 2 {
                // All points coincide.
                Some((0.0, hull[0], hull[0]))
            } else {
                None
            }
        }
        2 => Some((hull[0].distance(&hull[1]), hull[0], hull[1])),
        _ => {
            // Rotating calipers: for each edge, advance the antipodal point.
            let area2 = |a: &Point2, b: &Point2, c: &Point2| {
                ((b.x() - a.x()) * (c.y() - a.y()) - (b.y() - a.y()) * (c.x() - a.x())).abs()
            };
            let mut best = (0.0f64, hull[0], hull[0]);
            let mut j = 1usize;
            for i in 0..m {
                let ni = (i + 1) % m;
                // Advance j while the triangle area keeps growing.
                while area2(&hull[i], &hull[ni], &hull[(j + 1) % m])
                    > area2(&hull[i], &hull[ni], &hull[j])
                {
                    j = (j + 1) % m;
                }
                for p in [&hull[i], &hull[ni]] {
                    let d = p.distance(&hull[j]);
                    if d > best.0 {
                        best = (d, *p, hull[j]);
                    }
                }
            }
            Some(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_diameter(points: &[Point2]) -> f64 {
        let mut best = 0.0f64;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                best = best.max(points[i].distance(&points[j]));
            }
        }
        best
    }

    #[test]
    fn square_hull() {
        let pts = vec![
            Point2::new([0.0, 0.0]),
            Point2::new([1.0, 0.0]),
            Point2::new([1.0, 1.0]),
            Point2::new([0.0, 1.0]),
            Point2::new([0.5, 0.5]),
            Point2::new([0.5, 0.0]), // collinear boundary point
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // Counter-clockwise orientation.
        let mut area = 0.0;
        for i in 0..hull.len() {
            let a = &hull[i];
            let b = &hull[(i + 1) % hull.len()];
            area += a.x() * b.y() - b.x() * a.y();
        }
        assert!(area > 0.0, "hull not counter-clockwise");
        assert!((area / 2.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new([1.0, 2.0])]).len(), 1);
        // Duplicates collapse.
        let hull = convex_hull(&[Point2::new([1.0, 2.0]); 5]);
        assert_eq!(hull.len(), 1);
        // Collinear points give the two extremes.
        let line: Vec<Point2> = (0..10)
            .map(|i| Point2::new([i as f64, 2.0 * i as f64]))
            .collect();
        let hull = convex_hull(&line);
        assert_eq!(hull.len(), 2);
    }

    #[test]
    fn diameter_matches_brute_force() {
        use omt_rng::rngs::SmallRng;
        use omt_rng::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for trial in 0..20 {
            let n = 3 + (trial * 7) % 60;
            let pts: Vec<Point2> = (0..n)
                .map(|_| Point2::new([rng.random_range(-5.0..5.0), rng.random_range(-5.0..5.0)]))
                .collect();
            let (d, a, b) = diameter(&pts).unwrap();
            let brute = brute_diameter(&pts);
            assert!((d - brute).abs() < 1e-9, "trial {trial}: {d} vs {brute}");
            assert!((a.distance(&b) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn diameter_degenerates() {
        assert!(diameter(&[]).is_none());
        assert!(diameter(&[Point2::ORIGIN]).is_none());
        let (d, _, _) = diameter(&[Point2::ORIGIN, Point2::new([3.0, 4.0])]).unwrap();
        assert_eq!(d, 5.0);
        let (d, _, _) = diameter(&[Point2::new([1.0, 1.0]); 4]).unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn collinear_diameter() {
        let line: Vec<Point2> = (0..50)
            .map(|i| Point2::new([i as f64 * 0.1, 0.0]))
            .collect();
        let (d, _, _) = diameter(&line).unwrap();
        assert!((d - 4.9).abs() < 1e-12);
    }
}
