//! Euclidean geometry substrate for overlay multicast tree construction.
//!
//! This crate provides the geometric vocabulary shared by the rest of the
//! workspace, which reproduces *Overlay Multicast Trees of Minimal Delay*
//! (Riabov, Liu, Zhang):
//!
//! * [`Point`] — const-generic fixed-dimension points ([`Point2`],
//!   [`Point3`]).
//! * [`PolarPoint`] / [`SphericalPoint`] — the coordinate systems the
//!   paper's grid and bisection algorithms are expressed in.
//! * [`RingSegment`] / [`ShellCell`] — polar-grid cells with the exact
//!   4-way / 8-way splits used by the bisection algorithm.
//! * [`Region`] and implementations ([`Ball`], [`BoxRegion`],
//!   [`ConvexPolygon`], [`Annulus`]) — containment + uniform sampling for
//!   the experiment workloads.
//! * [`sample`] — low-level uniform samplers (disk, ball, sphere, box,
//!   triangle) built only on `omt-rng`'s uniform primitives.
//! * [`hull`] / [`enclosing`] — convex hulls, rotating-calipers diameters,
//!   and smallest enclosing circles (Welzl) for the minimum-diameter tree
//!   variant.
//! * [`HGrid`] — hierarchical capacity-summary index over polar cells
//!   with lower-bound-pruned best-parent queries; [`deepest_interior`] is
//!   the companion convex-region representative placement search.
//!
//! # Examples
//!
//! Sample the paper's canonical workload — `n` points uniform in the unit
//! disk with the source at the center:
//!
//! ```
//! use omt_geom::{Disk, Point2, Region};
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let points = Disk::unit().sample_n(&mut rng, 1000);
//! assert_eq!(points.len(), 1000);
//! assert!(points.iter().all(|p| p.norm() <= 1.0));
//! let source = Point2::ORIGIN;
//! # let _ = source;
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod enclosing;
pub mod hgrid;
pub mod hull;
pub mod point;
pub mod polar;
pub mod region;
pub mod sample;
pub mod segment;
pub mod soa;

pub use enclosing::{bounding_sphere, smallest_enclosing_circle, Circle, Sphere};
pub use hgrid::{deepest_interior, HGrid, PruneRecord};
pub use hull::{convex_hull, diameter};
pub use point::{Point, Point2, Point3};
pub use polar::{normalize_angle, Arc, PolarPoint, SphericalPoint};
pub use region::{
    Annulus, Ball, BoxRegion, ConvexPolygon, Disk, DynRegion2, DynRegion3, Region, Translated,
};
pub use segment::{RingSegment, ShellCell};
pub use soa::{PointStore2, PointStore3};
