//! Polar and spherical coordinates.
//!
//! The paper's grid and bisection algorithms are most naturally expressed in
//! polar coordinates: a 2-D point becomes `(radius, angle)` and a 3-D point
//! becomes `(radius, azimuth, cos_polar)`. This module provides those
//! representations plus the small angle arithmetic the algorithms need
//! (normalization, arc containment, arc length).

use core::f64::consts::TAU;

use crate::point::{Point2, Point3};

/// Normalizes an angle into `[0, 2π)`.
///
/// ```
/// use omt_geom::polar::normalize_angle;
/// use core::f64::consts::{PI, TAU};
///
/// assert!((normalize_angle(-PI) - PI).abs() < 1e-12);
/// assert_eq!(normalize_angle(0.0), 0.0);
/// assert!(normalize_angle(TAU) < 1e-12);
/// ```
#[inline]
pub fn normalize_angle(theta: f64) -> f64 {
    let r = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself when theta is a tiny negative number,
    // due to rounding; fold that back to 0.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// A point in polar coordinates: non-negative radius and angle in `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use omt_geom::{Point2, PolarPoint};
///
/// let p = PolarPoint::from_cartesian(&Point2::new([0.0, 2.0]));
/// assert!((p.radius - 2.0).abs() < 1e-12);
/// assert!((p.angle - core::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct PolarPoint {
    /// Distance from the pole (origin).
    pub radius: f64,
    /// Counter-clockwise angle from the positive x axis, in `[0, 2π)`.
    pub angle: f64,
}

impl PolarPoint {
    /// Creates a polar point, normalizing the angle into `[0, 2π)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is negative or not finite.
    #[inline]
    pub fn new(radius: f64, angle: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        Self {
            radius,
            angle: normalize_angle(angle),
        }
    }

    /// Converts a Cartesian point (relative to the pole at the origin).
    #[inline]
    pub fn from_cartesian(p: &Point2) -> Self {
        Self {
            radius: p.norm(),
            angle: p.angle(),
        }
    }

    /// Converts back to Cartesian coordinates.
    #[inline]
    pub fn to_cartesian(self) -> Point2 {
        Point2::new([
            self.radius * self.angle.cos(),
            self.radius * self.angle.sin(),
        ])
    }
}

/// A point in spherical coordinates adapted for equal-volume grids:
/// radius, azimuth `θ ∈ [0, 2π)`, and `z = cos(polar angle) ∈ [-1, 1]`.
///
/// Using `cos` of the polar angle instead of the angle itself makes the
/// volume of a coordinate box separable (Archimedes), which is what the 3-D
/// polar grid construction needs.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SphericalPoint {
    /// Distance from the pole (origin).
    pub radius: f64,
    /// Azimuthal angle in the xy-plane, in `[0, 2π)`.
    pub azimuth: f64,
    /// Cosine of the polar (inclination) angle, in `[-1, 1]`.
    pub cos_polar: f64,
}

impl SphericalPoint {
    /// Creates a spherical point, normalizing the azimuth.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is negative, or `cos_polar` is
    /// outside `[-1, 1]`.
    #[inline]
    pub fn new(radius: f64, azimuth: f64, cos_polar: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        debug_assert!(
            (-1.0..=1.0).contains(&cos_polar),
            "bad cos_polar {cos_polar}"
        );
        Self {
            radius,
            azimuth: normalize_angle(azimuth),
            cos_polar,
        }
    }

    /// Converts a Cartesian point (relative to the pole at the origin).
    #[inline]
    pub fn from_cartesian(p: &Point3) -> Self {
        Self {
            radius: p.norm(),
            azimuth: p.azimuth(),
            cos_polar: p.cos_polar(),
        }
    }

    /// Converts back to Cartesian coordinates.
    #[inline]
    pub fn to_cartesian(self) -> Point3 {
        let sin_polar = (1.0 - self.cos_polar * self.cos_polar).max(0.0).sqrt();
        Point3::new([
            self.radius * sin_polar * self.azimuth.cos(),
            self.radius * sin_polar * self.azimuth.sin(),
            self.radius * self.cos_polar,
        ])
    }
}

/// An arc of angles `[lo, hi)` on the circle, with `0 ≤ lo ≤ hi ≤ 2π`.
///
/// The grid only ever needs "standard position" arcs that do not wrap around
/// `2π`, which keeps containment tests branch-free and exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arc {
    lo: f64,
    hi: f64,
}

impl Arc {
    /// The full circle `[0, 2π)`.
    pub const FULL: Self = Self { lo: 0.0, hi: TAU };

    /// Creates the arc `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `lo < 0`, or `hi > 2π (+ε)`.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            (0.0..=hi).contains(&lo) && hi <= TAU * (1.0 + 1e-12),
            "invalid arc [{lo}, {hi})"
        );
        Self { lo, hi }
    }

    /// Lower endpoint (inclusive).
    #[inline]
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint (exclusive, except the full circle's `2π`).
    #[inline]
    pub const fn hi(&self) -> f64 {
        self.hi
    }

    /// Angular width `hi - lo`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint angle.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `angle` (assumed already normalized into `[0, 2π)`) lies in
    /// the arc. The full circle contains every normalized angle.
    #[inline]
    pub fn contains(&self, angle: f64) -> bool {
        self.lo <= angle && angle < self.hi
    }

    /// Splits the arc into two equal halves `[lo, mid)` and `[mid, hi)`.
    #[inline]
    pub fn split(&self) -> (Self, Self) {
        let m = self.mid();
        (Self { lo: self.lo, hi: m }, Self { lo: m, hi: self.hi })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalize_angle_range_and_fixed_points() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert!((normalize_angle(-FRAC_PI_2) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
        for i in -20..20 {
            let a = normalize_angle(i as f64 * 1.3);
            assert!((0.0..TAU).contains(&a));
        }
    }

    #[test]
    fn polar_round_trip() {
        let pts = [
            Point2::new([1.0, 0.0]),
            Point2::new([-2.0, 3.0]),
            Point2::new([0.5, -0.5]),
            Point2::new([0.0, -7.0]),
        ];
        for p in pts {
            let rt = PolarPoint::from_cartesian(&p).to_cartesian();
            assert!(p.distance(&rt) < 1e-12, "{p:?} -> {rt:?}");
        }
    }

    #[test]
    fn spherical_round_trip() {
        let pts = [
            Point3::new([1.0, 0.0, 0.0]),
            Point3::new([-2.0, 3.0, 1.0]),
            Point3::new([0.0, 0.0, -4.0]),
            Point3::new([0.3, -0.1, 0.2]),
        ];
        for p in pts {
            let rt = SphericalPoint::from_cartesian(&p).to_cartesian();
            assert!(p.distance(&rt) < 1e-12, "{p:?} -> {rt:?}");
        }
    }

    #[test]
    fn spherical_poles() {
        let north = SphericalPoint::from_cartesian(&Point3::new([0.0, 0.0, 5.0]));
        assert_eq!(north.cos_polar, 1.0);
        assert_eq!(north.radius, 5.0);
        let south = SphericalPoint::from_cartesian(&Point3::new([0.0, 0.0, -5.0]));
        assert_eq!(south.cos_polar, -1.0);
    }

    #[test]
    fn arc_contains_and_split() {
        let arc = Arc::new(0.0, PI);
        assert!(arc.contains(0.0));
        assert!(arc.contains(FRAC_PI_2));
        assert!(!arc.contains(PI));
        let (a, b) = arc.split();
        assert_eq!(a.hi(), b.lo());
        assert!((a.width() - b.width()).abs() < 1e-15);
        assert!(a.contains(FRAC_PI_2 - 0.1));
        assert!(b.contains(FRAC_PI_2 + 0.1));
    }

    #[test]
    fn full_arc_contains_everything_normalized() {
        for i in 0..64 {
            let a = i as f64 / 64.0 * TAU;
            assert!(Arc::FULL.contains(a));
        }
    }

    #[test]
    #[should_panic(expected = "invalid arc")]
    fn arc_rejects_inverted() {
        let _ = Arc::new(1.0, 0.5);
    }

    #[test]
    fn arc_width_and_mid() {
        let arc = Arc::new(1.0, 2.0);
        assert!((arc.width() - 1.0).abs() < 1e-15);
        assert!((arc.mid() - 1.5).abs() < 1e-15);
    }
}
