//! Structure-of-arrays point stores for the million-scale construction path.
//!
//! The grid builders in `omt-core` consume points twice: once in Cartesian
//! form (edge lengths, tree depths) and once in source-relative polar form
//! (ring assignment, angular bisection). The array-of-structs pipeline
//! materializes both as `Vec<Point2>` / `Vec<PolarPoint>` — two full copies
//! plus per-cell index `Vec`s. At the paper's largest configurations
//! (Table I runs up to n = 5,000,000) that layout is memory-bandwidth-bound
//! and wastes roughly half the resident set on struct padding and
//! duplication.
//!
//! [`PointStore2`] and [`PointStore3`] keep one flat `f64` array per
//! coordinate instead: absolute Cartesian components plus the
//! source-relative polar components, computed **once, at insertion time**,
//! with exactly the float operations the AoS path uses
//! ([`PolarPoint::from_cartesian`] on `p - source`). Sampling a workload
//! via [`PointStore2::sample_region`] streams points straight from the
//! region sampler into the arrays in bounded chunks, so no intermediate
//! `Vec<Point2>` of all n points ever exists and the RNG stream is
//! bit-identical to [`Region::sample_n`].
//!
//! Bit-identity contract: for every index `i`,
//! `store.polar(i) == PolarPoint::from_cartesian(&(points[i] - source))`
//! down to the last bit (and the spherical analogue in 3-D). The parity
//! tests in `omt-core` lean on this to prove the arena/SoA construction
//! path reproduces the legacy trees edge-for-edge.

use omt_rng::Rng;

use crate::point::{Point2, Point3};
use crate::polar::{PolarPoint, SphericalPoint};
use crate::region::Region;

/// Chunk size (points) for streamed sampling: large enough to amortize the
/// per-chunk bookkeeping, small enough (~1 MiB of staging for 2-D) to keep
/// the staging buffer cache-resident and the peak RSS flat.
const SAMPLE_CHUNK: usize = 1 << 16;

/// A structure-of-arrays store of 2-D points with their source-relative
/// polar coordinates.
///
/// # Examples
///
/// ```
/// use omt_geom::{Disk, Point2, PointStore2, PolarPoint, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// // Streamed sampling matches `sample_n` bit-for-bit...
/// let source = Point2::ORIGIN;
/// let store = PointStore2::sample_region(
///     source,
///     &Disk::unit(),
///     &mut SmallRng::seed_from_u64(2004),
///     1000,
/// );
/// let reference = Disk::unit().sample_n(&mut SmallRng::seed_from_u64(2004), 1000);
/// assert_eq!(store.to_points(), reference);
///
/// // ...and the stored polar view matches the AoS conversion bit-for-bit.
/// let p = store.point(17);
/// assert_eq!(store.polar(17), PolarPoint::from_cartesian(&(p - source)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointStore2 {
    source: Point2,
    xs: Vec<f64>,
    ys: Vec<f64>,
    radius: Vec<f64>,
    angle: Vec<f64>,
}

impl PointStore2 {
    /// Creates an empty store whose polar coordinates are relative to
    /// `source`.
    #[must_use]
    pub fn new(source: Point2) -> Self {
        Self::with_capacity(source, 0)
    }

    /// Creates an empty store with all four arrays preallocated for `n`
    /// points (one allocation each; no growth doubling on the fill path).
    #[must_use]
    pub fn with_capacity(source: Point2, n: usize) -> Self {
        Self {
            source,
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            radius: Vec::with_capacity(n),
            angle: Vec::with_capacity(n),
        }
    }

    /// Appends a point, computing its source-relative polar form inline.
    ///
    /// Non-finite coordinates are stored as-is (the polar components then
    /// hold whatever IEEE arithmetic produces); consumers that require
    /// finite inputs validate the Cartesian arrays, exactly like the AoS
    /// builders validate their input slice.
    pub fn push(&mut self, p: Point2) {
        let rel = p - self.source;
        self.xs.push(p.x());
        self.ys.push(p.y());
        self.radius.push(rel.norm());
        self.angle.push(rel.angle());
    }

    /// Builds a store from an existing point slice (used by the parity
    /// tests to feed both construction paths the same workload).
    #[must_use]
    pub fn from_points(source: Point2, points: &[Point2]) -> Self {
        let mut store = Self::with_capacity(source, points.len());
        for p in points {
            store.push(*p);
        }
        store
    }

    /// Samples `n` points uniformly from `region`, streaming them into the
    /// store in chunks of at most 65,536 points.
    ///
    /// The RNG is consumed exactly as by [`Region::sample_n`] (one
    /// [`Region::sample`] call per point, in order), so the generated
    /// coordinates are bit-identical to the AoS workload — but no full
    /// `Vec<Point2>` copy of the workload is ever allocated: the staging
    /// buffer holds one chunk, and each coordinate array is appended in a
    /// cache-friendly block per chunk.
    #[must_use]
    pub fn sample_region<R: Region<2> + ?Sized>(
        source: Point2,
        region: &R,
        rng: &mut dyn Rng,
        n: usize,
    ) -> Self {
        let mut store = Self::with_capacity(source, n);
        let mut staging: Vec<Point2> = Vec::with_capacity(SAMPLE_CHUNK.min(n));
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(SAMPLE_CHUNK);
            staging.clear();
            for _ in 0..chunk {
                staging.push(region.sample(rng));
            }
            for p in &staging {
                store.push(*p);
            }
            remaining -= chunk;
        }
        store
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The source the polar coordinates are relative to.
    #[must_use]
    pub fn source(&self) -> Point2 {
        self.source
    }

    /// Absolute x coordinates.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Absolute y coordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Source-relative radii (`‖p - source‖`).
    #[must_use]
    pub fn radius(&self) -> &[f64] {
        &self.radius
    }

    /// Source-relative angles, normalized to `[0, 2π)`.
    #[must_use]
    pub fn angle(&self) -> &[f64] {
        &self.angle
    }

    /// The `i`-th point in Cartesian form.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point2 {
        Point2::new([self.xs[i], self.ys[i]])
    }

    /// The `i`-th point in source-relative polar form.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn polar(&self, i: usize) -> PolarPoint {
        PolarPoint {
            radius: self.radius[i],
            angle: self.angle[i],
        }
    }

    /// Materializes the Cartesian points as a `Vec` (test/interop helper;
    /// the construction path itself never needs this copy).
    #[must_use]
    pub fn to_points(&self) -> Vec<Point2> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }
}

/// A structure-of-arrays store of 3-D points with their source-relative
/// spherical coordinates.
///
/// The 3-D twin of [`PointStore2`]: absolute `x`/`y`/`z` arrays plus
/// source-relative `radius`/`azimuth`/`cos_polar` arrays, with the same
/// bit-identity contract against [`SphericalPoint::from_cartesian`].
///
/// # Examples
///
/// ```
/// use omt_geom::{Ball, Point3, PointStore3, SphericalPoint, Region};
/// use omt_rng::rngs::SmallRng;
/// use omt_rng::SeedableRng;
///
/// let source = Point3::ORIGIN;
/// let store = PointStore3::sample_region(
///     source,
///     &Ball::<3>::unit(),
///     &mut SmallRng::seed_from_u64(2004),
///     500,
/// );
/// let p = store.point(42);
/// assert_eq!(store.spherical(42), SphericalPoint::from_cartesian(&(p - source)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PointStore3 {
    source: Point3,
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    radius: Vec<f64>,
    azimuth: Vec<f64>,
    cos_polar: Vec<f64>,
}

impl PointStore3 {
    /// Creates an empty store whose spherical coordinates are relative to
    /// `source`.
    #[must_use]
    pub fn new(source: Point3) -> Self {
        Self::with_capacity(source, 0)
    }

    /// Creates an empty store with all six arrays preallocated for `n`
    /// points.
    #[must_use]
    pub fn with_capacity(source: Point3, n: usize) -> Self {
        Self {
            source,
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            zs: Vec::with_capacity(n),
            radius: Vec::with_capacity(n),
            azimuth: Vec::with_capacity(n),
            cos_polar: Vec::with_capacity(n),
        }
    }

    /// Appends a point, computing its source-relative spherical form
    /// inline (same finiteness caveat as [`PointStore2::push`]).
    pub fn push(&mut self, p: Point3) {
        let rel = p - self.source;
        self.xs.push(p.x());
        self.ys.push(p.y());
        self.zs.push(p.z());
        self.radius.push(rel.norm());
        self.azimuth.push(rel.azimuth());
        self.cos_polar.push(rel.cos_polar());
    }

    /// Builds a store from an existing point slice.
    #[must_use]
    pub fn from_points(source: Point3, points: &[Point3]) -> Self {
        let mut store = Self::with_capacity(source, points.len());
        for p in points {
            store.push(*p);
        }
        store
    }

    /// Samples `n` points uniformly from `region` in bounded chunks; see
    /// [`PointStore2::sample_region`] for the streaming and RNG-parity
    /// guarantees.
    #[must_use]
    pub fn sample_region<R: Region<3> + ?Sized>(
        source: Point3,
        region: &R,
        rng: &mut dyn Rng,
        n: usize,
    ) -> Self {
        let mut store = Self::with_capacity(source, n);
        let mut staging: Vec<Point3> = Vec::with_capacity(SAMPLE_CHUNK.min(n));
        let mut remaining = n;
        while remaining > 0 {
            let chunk = remaining.min(SAMPLE_CHUNK);
            staging.clear();
            for _ in 0..chunk {
                staging.push(region.sample(rng));
            }
            for p in &staging {
                store.push(*p);
            }
            remaining -= chunk;
        }
        store
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The source the spherical coordinates are relative to.
    #[must_use]
    pub fn source(&self) -> Point3 {
        self.source
    }

    /// Absolute x coordinates.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Absolute y coordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Absolute z coordinates.
    #[must_use]
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// Source-relative radii (`‖p - source‖`).
    #[must_use]
    pub fn radius(&self) -> &[f64] {
        &self.radius
    }

    /// Source-relative azimuths, normalized to `[0, 2π)`.
    #[must_use]
    pub fn azimuth(&self) -> &[f64] {
        &self.azimuth
    }

    /// Source-relative polar-angle cosines in `[-1, 1]`.
    #[must_use]
    pub fn cos_polar(&self) -> &[f64] {
        &self.cos_polar
    }

    /// The `i`-th point in Cartesian form.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn point(&self, i: usize) -> Point3 {
        Point3::new([self.xs[i], self.ys[i], self.zs[i]])
    }

    /// The `i`-th point in source-relative spherical form.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn spherical(&self, i: usize) -> SphericalPoint {
        SphericalPoint {
            radius: self.radius[i],
            azimuth: self.azimuth[i],
            cos_polar: self.cos_polar[i],
        }
    }

    /// Materializes the Cartesian points as a `Vec`.
    #[must_use]
    pub fn to_points(&self) -> Vec<Point3> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Ball;
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;

    #[test]
    fn polar_view_is_bit_identical_to_aos_conversion() {
        let source = Point2::new([0.25, -1.5]);
        let mut rng = SmallRng::seed_from_u64(99);
        let points = Ball::<2>::new(Point2::new([1.0, 2.0]), 3.0).sample_n(&mut rng, 500);
        let store = PointStore2::from_points(source, &points);
        assert_eq!(store.len(), points.len());
        for (i, p) in points.iter().enumerate() {
            let expect = PolarPoint::from_cartesian(&(*p - source));
            assert_eq!(store.radius()[i].to_bits(), expect.radius.to_bits());
            assert_eq!(store.angle()[i].to_bits(), expect.angle.to_bits());
            assert_eq!(store.point(i), *p);
        }
    }

    #[test]
    fn spherical_view_is_bit_identical_to_aos_conversion() {
        let source = Point3::new([0.1, 0.2, -0.3]);
        let mut rng = SmallRng::seed_from_u64(7);
        let points = Ball::<3>::new(Point3::new([0.5, 0.0, 1.0]), 2.0).sample_n(&mut rng, 500);
        let store = PointStore3::from_points(source, &points);
        for (i, p) in points.iter().enumerate() {
            let expect = SphericalPoint::from_cartesian(&(*p - source));
            assert_eq!(store.radius()[i].to_bits(), expect.radius.to_bits());
            assert_eq!(store.azimuth()[i].to_bits(), expect.azimuth.to_bits());
            assert_eq!(store.cos_polar()[i].to_bits(), expect.cos_polar.to_bits());
        }
    }

    #[test]
    fn streamed_sampling_matches_sample_n_across_chunk_boundary() {
        // n > SAMPLE_CHUNK would be slow in a unit test; instead prove the
        // chunking logic with the public API at sizes around a synthetic
        // boundary by comparing against sample_n draw-for-draw.
        for n in [0usize, 1, 7, 1000] {
            let store = PointStore2::sample_region(
                Point2::ORIGIN,
                &Ball::<2>::unit(),
                &mut SmallRng::seed_from_u64(2004),
                n,
            );
            let reference = Ball::<2>::unit().sample_n(&mut SmallRng::seed_from_u64(2004), n);
            assert_eq!(store.to_points(), reference);
        }
    }

    #[test]
    fn streamed_sampling_3d_matches_sample_n() {
        let store = PointStore3::sample_region(
            Point3::ORIGIN,
            &Ball::<3>::unit(),
            &mut SmallRng::seed_from_u64(2005),
            333,
        );
        let reference = Ball::<3>::unit().sample_n(&mut SmallRng::seed_from_u64(2005), 333);
        assert_eq!(store.to_points(), reference);
    }

    #[test]
    fn with_capacity_fill_does_not_reallocate() {
        let mut store = PointStore2::with_capacity(Point2::ORIGIN, 64);
        let cap = store.xs().as_ptr();
        for i in 0..64 {
            store.push(Point2::new([i as f64, -(i as f64)]));
        }
        assert_eq!(store.xs().as_ptr(), cap);
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn non_finite_points_are_stored_verbatim() {
        let mut store = PointStore2::new(Point2::ORIGIN);
        store.push(Point2::new([f64::NAN, 1.0]));
        assert!(store.xs()[0].is_nan());
        assert_eq!(store.ys()[0], 1.0);
    }
}
