//! Grid cells: 2-D ring segments and 3-D shell cells.
//!
//! A *ring segment* (Figure 1 of the paper) is the region between two
//! concentric circles, cut by an angular wedge: `{(r, θ) : r_lo ≤ r < r_hi,
//! θ_lo ≤ θ < θ_hi}`. The bisection algorithm recursively splits a segment
//! into four sub-segments (two radially × two angularly). The 3-D analogue,
//! a *shell cell*, adds a `cos_polar` extent and splits into eight.
//!
//! Cells are half-open in every coordinate so that the children of a split
//! tile the parent exactly: every point of the parent belongs to exactly one
//! child. (The outermost grid ring treats its outer radius as inclusive at a
//! higher level, by nudging the boundary — see `omt-core`.)

use crate::polar::{Arc, PolarPoint, SphericalPoint};

/// A 2-D polar-grid cell: radii `[r_lo, r_hi)` and angles `[θ_lo, θ_hi)`.
///
/// # Examples
///
/// ```
/// use omt_geom::{PolarPoint, RingSegment};
///
/// let seg = RingSegment::new(0.5, 1.0, 0.0, core::f64::consts::PI);
/// assert!(seg.contains(&PolarPoint::new(0.75, 1.0)));
/// assert!(!seg.contains(&PolarPoint::new(0.25, 1.0)));
/// let children = seg.split4();
/// let p = PolarPoint::new(0.9, 0.1);
/// assert_eq!(children.iter().filter(|c| c.contains(&p)).count(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RingSegment {
    r_lo: f64,
    r_hi: f64,
    arc: Arc,
}

impl RingSegment {
    /// Creates a ring segment.
    ///
    /// A degenerate full disk is expressed as `r_lo = 0` with the full arc.
    ///
    /// # Panics
    ///
    /// Panics if `r_lo < 0`, `r_lo > r_hi`, or the angles do not satisfy
    /// `0 ≤ θ_lo ≤ θ_hi ≤ 2π`.
    pub fn new(r_lo: f64, r_hi: f64, theta_lo: f64, theta_hi: f64) -> Self {
        assert!(
            0.0 <= r_lo && r_lo <= r_hi,
            "invalid radii [{r_lo}, {r_hi})"
        );
        Self {
            r_lo,
            r_hi,
            arc: Arc::new(theta_lo, theta_hi),
        }
    }

    /// The full disk of radius `r` centered at the pole.
    pub fn disk(r: f64) -> Self {
        Self {
            r_lo: 0.0,
            r_hi: r,
            arc: Arc::FULL,
        }
    }

    /// Inner radius (inclusive).
    #[inline]
    pub const fn r_lo(&self) -> f64 {
        self.r_lo
    }

    /// Outer radius (exclusive).
    #[inline]
    pub const fn r_hi(&self) -> f64 {
        self.r_hi
    }

    /// The angular extent.
    #[inline]
    pub const fn arc(&self) -> Arc {
        self.arc
    }

    /// Angular width `θ_hi - θ_lo` (the paper's `a`).
    #[inline]
    pub fn angle_width(&self) -> f64 {
        self.arc.width()
    }

    /// Area of the segment: `(θ_hi - θ_lo)/2 · (r_hi² - r_lo²)`.
    #[inline]
    pub fn area(&self) -> f64 {
        0.5 * self.arc.width() * (self.r_hi * self.r_hi - self.r_lo * self.r_lo)
    }

    /// Whether the polar point lies inside (half-open on both axes).
    #[inline]
    pub fn contains(&self, p: &PolarPoint) -> bool {
        self.r_lo <= p.radius && p.radius < self.r_hi && self.arc.contains(p.angle)
    }

    /// Splits into four sub-segments: radius halved at `(r_lo + r_hi)/2` and
    /// angle halved at the arc midpoint, exactly as in the bisection
    /// algorithm (Figure 1 b).
    ///
    /// Children are ordered `[inner-low-angle, inner-high-angle,
    /// outer-low-angle, outer-high-angle]`.
    pub fn split4(&self) -> [Self; 4] {
        let rm = 0.5 * (self.r_lo + self.r_hi);
        let (a_lo, a_hi) = self.arc.split();
        [
            Self {
                r_lo: self.r_lo,
                r_hi: rm,
                arc: a_lo,
            },
            Self {
                r_lo: self.r_lo,
                r_hi: rm,
                arc: a_hi,
            },
            Self {
                r_lo: rm,
                r_hi: self.r_hi,
                arc: a_lo,
            },
            Self {
                r_lo: rm,
                r_hi: self.r_hi,
                arc: a_hi,
            },
        ]
    }

    /// Index (0–3, matching [`RingSegment::split4`] order) of the child that
    /// contains `p`. Faster than testing each child and immune to boundary
    /// rounding: classification uses the same midpoint comparisons as the
    /// split.
    ///
    /// The point is assumed to lie inside `self`; out-of-cell points are
    /// clamped to the nearest child.
    #[inline]
    pub fn classify4(&self, p: &PolarPoint) -> usize {
        let rm = 0.5 * (self.r_lo + self.r_hi);
        let am = self.arc.mid();
        let outer = usize::from(p.radius >= rm);
        let high = usize::from(p.angle >= am);
        outer * 2 + high
    }

    /// Splits into two sub-segments along the angle only.
    pub fn split_angle(&self) -> (Self, Self) {
        let (a_lo, a_hi) = self.arc.split();
        (
            Self {
                r_lo: self.r_lo,
                r_hi: self.r_hi,
                arc: a_lo,
            },
            Self {
                r_lo: self.r_lo,
                r_hi: self.r_hi,
                arc: a_hi,
            },
        )
    }
}

/// A 3-D spherical-grid cell: radii `[r_lo, r_hi)`, azimuth `[θ_lo, θ_hi)`,
/// and `cos_polar ∈ [z_lo, z_hi)`.
///
/// Splitting alternately in azimuth and `cos_polar` halves the solid angle
/// exactly (Archimedes), so an equal-volume grid needs no transcendental
/// inversions in 3-D.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShellCell {
    r_lo: f64,
    r_hi: f64,
    arc: Arc,
    z_lo: f64,
    z_hi: f64,
}

impl ShellCell {
    /// Creates a shell cell.
    ///
    /// # Panics
    ///
    /// Panics if any extent is inverted, radii are negative, or the `z`
    /// extent leaves `[-1, 1]`.
    pub fn new(r_lo: f64, r_hi: f64, theta_lo: f64, theta_hi: f64, z_lo: f64, z_hi: f64) -> Self {
        assert!(
            0.0 <= r_lo && r_lo <= r_hi,
            "invalid radii [{r_lo}, {r_hi})"
        );
        assert!(
            (-1.0..=1.0).contains(&z_lo) && z_lo <= z_hi && z_hi <= 1.0,
            "invalid z extent [{z_lo}, {z_hi})"
        );
        Self {
            r_lo,
            r_hi,
            arc: Arc::new(theta_lo, theta_hi),
            z_lo,
            z_hi,
        }
    }

    /// The full ball of radius `r` centered at the pole.
    pub fn ball(r: f64) -> Self {
        Self {
            r_lo: 0.0,
            r_hi: r,
            arc: Arc::FULL,
            z_lo: -1.0,
            z_hi: 1.0,
        }
    }

    /// Inner radius (inclusive).
    #[inline]
    pub const fn r_lo(&self) -> f64 {
        self.r_lo
    }

    /// Outer radius (exclusive).
    #[inline]
    pub const fn r_hi(&self) -> f64 {
        self.r_hi
    }

    /// The azimuthal extent.
    #[inline]
    pub const fn arc(&self) -> Arc {
        self.arc
    }

    /// The `cos_polar` extent as `(z_lo, z_hi)`.
    #[inline]
    pub const fn z_range(&self) -> (f64, f64) {
        (self.z_lo, self.z_hi)
    }

    /// Solid angle of the cell's angular box: `Δθ · Δz` steradians.
    #[inline]
    pub fn solid_angle(&self) -> f64 {
        self.arc.width() * (self.z_hi - self.z_lo)
    }

    /// Volume: `solid_angle/3 · (r_hi³ - r_lo³)`.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.solid_angle() / 3.0 * (self.r_hi.powi(3) - self.r_lo.powi(3))
    }

    /// Whether the spherical point lies inside (half-open everywhere, except
    /// `z_hi = 1`, which is inclusive so the north pole belongs to a cell).
    #[inline]
    pub fn contains(&self, p: &SphericalPoint) -> bool {
        let z_ok = self.z_lo <= p.cos_polar
            && (p.cos_polar < self.z_hi || (self.z_hi >= 1.0 && p.cos_polar <= 1.0));
        self.r_lo <= p.radius && p.radius < self.r_hi && self.arc.contains(p.azimuth) && z_ok
    }

    /// An upper bound on the great-circle "width" a path crosses the cell's
    /// angular box with, at radius `r_hi`: the diagonal of the angular box
    /// scaled to the outer radius. This plays the role of `R·a` in the 2-D
    /// path-length bound.
    pub fn angular_diameter_bound(&self) -> f64 {
        // Azimuth arc length at the widest parallel inside the cell plus the
        // polar arc length; both at the outer radius. A safe (loose) bound.
        let max_sin = max_sin_polar(self.z_lo, self.z_hi);
        self.r_hi * (self.arc.width() * max_sin + polar_angle_span(self.z_lo, self.z_hi))
    }

    /// Splits into eight children: radius halved, azimuth halved, `z` halved.
    ///
    /// Child index bit layout: `outer·4 + high_azimuth·2 + high_z`.
    pub fn split8(&self) -> [Self; 8] {
        let rm = 0.5 * (self.r_lo + self.r_hi);
        let (a_lo, a_hi) = self.arc.split();
        let zm = 0.5 * (self.z_lo + self.z_hi);
        let mut out = [*self; 8];
        for (idx, cell) in out.iter_mut().enumerate() {
            let (outer, high_a, high_z) = (idx & 4 != 0, idx & 2 != 0, idx & 1 != 0);
            cell.r_lo = if outer { rm } else { self.r_lo };
            cell.r_hi = if outer { self.r_hi } else { rm };
            cell.arc = if high_a { a_hi } else { a_lo };
            cell.z_lo = if high_z { zm } else { self.z_lo };
            cell.z_hi = if high_z { self.z_hi } else { zm };
        }
        out
    }

    /// Index (0–7, matching [`ShellCell::split8`] order) of the child
    /// containing `p`, by midpoint comparisons.
    #[inline]
    pub fn classify8(&self, p: &SphericalPoint) -> usize {
        let rm = 0.5 * (self.r_lo + self.r_hi);
        let am = self.arc.mid();
        let zm = 0.5 * (self.z_lo + self.z_hi);
        usize::from(p.radius >= rm) * 4
            + usize::from(p.azimuth >= am) * 2
            + usize::from(p.cos_polar >= zm)
    }

    /// Splits into two cells of equal solid angle along the azimuth.
    pub fn split_azimuth(&self) -> (Self, Self) {
        let (a_lo, a_hi) = self.arc.split();
        let mut lo = *self;
        let mut hi = *self;
        lo.arc = a_lo;
        hi.arc = a_hi;
        (lo, hi)
    }

    /// Splits into two cells of equal solid angle along `cos_polar`.
    pub fn split_z(&self) -> (Self, Self) {
        let zm = 0.5 * (self.z_lo + self.z_hi);
        let mut lo = *self;
        let mut hi = *self;
        lo.z_hi = zm;
        hi.z_lo = zm;
        (lo, hi)
    }
}

/// Maximum of `sin(polar angle)` over `cos_polar ∈ [z_lo, z_hi]`: 1 if the
/// interval straddles the equator (`z = 0`), else attained at the endpoint
/// closer to the equator.
fn max_sin_polar(z_lo: f64, z_hi: f64) -> f64 {
    if z_lo <= 0.0 && 0.0 <= z_hi {
        1.0
    } else {
        let z = z_lo.abs().min(z_hi.abs());
        (1.0 - z * z).max(0.0).sqrt()
    }
}

/// The span of the polar angle itself: `acos(z_lo) - acos(z_hi)`.
fn polar_angle_span(z_lo: f64, z_hi: f64) -> f64 {
    z_lo.clamp(-1.0, 1.0).acos() - z_hi.clamp(-1.0, 1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn split4_tiles_parent_area() {
        let seg = RingSegment::new(0.3, 1.1, 0.5, 2.5);
        let total: f64 = seg.split4().iter().map(RingSegment::area).sum();
        assert!((total - seg.area()).abs() < 1e-12);
    }

    #[test]
    fn split4_children_are_disjoint_and_cover() {
        let seg = RingSegment::new(0.2, 1.0, 0.0, PI);
        let kids = seg.split4();
        // Sample a grid of points inside the parent.
        for i in 0..20 {
            for j in 0..20 {
                let r = 0.2 + (i as f64 + 0.5) / 20.0 * 0.8;
                let t = (j as f64 + 0.5) / 20.0 * PI;
                let p = PolarPoint::new(r, t);
                assert!(seg.contains(&p));
                let n = kids.iter().filter(|c| c.contains(&p)).count();
                assert_eq!(n, 1, "point {p:?}");
                assert!(kids[seg.classify4(&p)].contains(&p));
            }
        }
    }

    #[test]
    fn classify4_matches_containment_on_boundaries() {
        let seg = RingSegment::new(0.0, 2.0, 0.0, TAU);
        // Exactly at the radial midpoint -> outer children.
        let p = PolarPoint::new(1.0, 0.1);
        assert!(seg.classify4(&p) >= 2);
        assert!(seg.split4()[seg.classify4(&p)].contains(&p));
        // Exactly at the angular midpoint -> high-angle children.
        let q = PolarPoint::new(0.5, PI);
        assert_eq!(seg.classify4(&q) % 2, 1);
    }

    #[test]
    fn disk_constructor() {
        let d = RingSegment::disk(1.0);
        assert!((d.area() - PI).abs() < 1e-12);
        assert!(d.contains(&PolarPoint::new(0.0, 0.0)));
        assert!(d.contains(&PolarPoint::new(0.999, 3.0)));
        assert!(!d.contains(&PolarPoint::new(1.0, 0.0)));
    }

    #[test]
    fn angle_width_is_paper_a() {
        let seg = RingSegment::new(0.5, 1.0, 1.0, 1.5);
        assert!((seg.angle_width() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn shell_split8_tiles_parent_volume() {
        let cell = ShellCell::new(0.2, 0.9, 0.3, 2.0, -0.5, 0.8);
        let total: f64 = cell.split8().iter().map(ShellCell::volume).sum();
        assert!((total - cell.volume()).abs() < 1e-12);
    }

    #[test]
    fn shell_children_partition_points() {
        let cell = ShellCell::new(0.1, 1.0, 0.0, PI, -1.0, 1.0);
        let kids = cell.split8();
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    let p = SphericalPoint::new(
                        0.1 + (i as f64 + 0.5) / 8.0 * 0.9,
                        (j as f64 + 0.5) / 8.0 * PI,
                        -1.0 + (k as f64 + 0.5) / 8.0 * 2.0,
                    );
                    assert!(cell.contains(&p));
                    let n = kids.iter().filter(|c| c.contains(&p)).count();
                    assert_eq!(n, 1);
                    assert!(kids[cell.classify8(&p)].contains(&p));
                }
            }
        }
    }

    #[test]
    fn ball_volume() {
        let b = ShellCell::ball(1.0);
        assert!((b.volume() - 4.0 / 3.0 * PI).abs() < 1e-12);
        assert!((b.solid_angle() - 4.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn north_pole_belongs_to_top_cell() {
        let b = ShellCell::ball(2.0);
        let (lo, hi) = b.split_z();
        let pole = SphericalPoint::new(1.0, 0.0, 1.0);
        assert!(!lo.contains(&pole));
        assert!(hi.contains(&pole));
    }

    #[test]
    fn split_z_equal_solid_angle() {
        let b = ShellCell::new(0.0, 1.0, 0.0, FRAC_PI_2, -0.25, 0.75);
        let (lo, hi) = b.split_z();
        assert!((lo.solid_angle() - hi.solid_angle()).abs() < 1e-12);
        let (la, ha) = b.split_azimuth();
        assert!((la.solid_angle() - ha.solid_angle()).abs() < 1e-12);
    }

    #[test]
    fn max_sin_polar_cases() {
        assert_eq!(max_sin_polar(-0.5, 0.5), 1.0);
        assert!((max_sin_polar(0.6, 1.0) - 0.8) < 1e-12);
        assert!((max_sin_polar(-1.0, -0.6) - 0.8) < 1e-12);
    }

    #[test]
    fn angular_diameter_bound_positive_and_scales() {
        let c = ShellCell::new(0.0, 1.0, 0.0, 1.0, 0.0, 0.5);
        let c2 = ShellCell::new(0.0, 2.0, 0.0, 1.0, 0.0, 0.5);
        assert!(c.angular_diameter_bound() > 0.0);
        assert!((c2.angular_diameter_bound() - 2.0 * c.angular_diameter_bound()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid radii")]
    fn rejects_inverted_radii() {
        let _ = RingSegment::new(1.0, 0.5, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid z extent")]
    fn rejects_bad_z() {
        let _ = ShellCell::new(0.0, 1.0, 0.0, 1.0, 0.5, 1.5);
    }
}
