//! A dependency-free, std-thread work pool with **deterministic join
//! semantics**.
//!
//! The whole workspace is built on reproducibility: every experiment result
//! is pinned to a seed, and the golden-stream tests assert tree radii down
//! to the last bit. Parallelism must therefore never be allowed to change
//! *what* is computed — only *when*. This crate provides the one primitive
//! the hot paths need under that constraint:
//!
//! [`par_map_indexed`] maps a function over a work list on a fixed number
//! of std threads and collects the results **in index order**. Workers
//! claim indices from a shared atomic counter (so skewed item costs load-
//! balance), but each result is placed by its item index, never by
//! completion order. As long as the mapped function is a pure function of
//! `(index, item)` — which every call site in this workspace guarantees by
//! deriving per-item RNG streams from SplitMix64-finalized `(seed, index)`
//! pairs, exactly like `omt_experiments::workload::trial_rng` — the output
//! is bit-identical for every thread count, including 1.
//!
//! Thread-count policy lives in [`effective_threads`]: the `OMT_THREADS`
//! environment variable wins, otherwise the machine's available
//! parallelism; `OMT_THREADS=1` forces the plain sequential path (no
//! threads are spawned at all).
//!
//! # Examples
//!
//! ```
//! let squares = omt_par::par_map_indexed(&[1u64, 2, 3, 4], 4, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The environment variable controlling the default worker count.
pub const THREADS_ENV: &str = "OMT_THREADS";

/// The worker count used when the caller does not pin one: `OMT_THREADS`
/// if set to a positive integer, otherwise the machine's available
/// parallelism (1 if that cannot be determined).
///
/// Unparsable or zero values of `OMT_THREADS` fall back to the available
/// parallelism rather than erroring: a misconfigured environment should
/// degrade to the default, not take the experiment down.
#[must_use]
pub fn effective_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(t) if t >= 1 => t,
            _ => available_parallelism(),
        },
        Err(_) => available_parallelism(),
    }
}

/// The machine's available parallelism, defaulting to 1 when unknown.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves an optional per-call-site thread override against the
/// environment default: `Some(t)` is clamped to at least 1, `None` asks
/// [`effective_threads`].
#[must_use]
pub fn resolve_threads(override_threads: Option<usize>) -> usize {
    override_threads.map_or_else(effective_threads, |t| t.max(1))
}

/// Maps `f` over `items` on up to `threads` worker threads and returns the
/// results in item order.
///
/// Guarantees:
///
/// * **Index-ordered join** — `result[i] == f(i, &items[i])` for every `i`,
///   regardless of which worker computed it or when it finished.
/// * **Sequential parity** — with `threads <= 1` (or a single item) no
///   thread is spawned and the items are mapped inline, in order. Because
///   placement is by index either way, a pure `f` yields bit-identical
///   output for every thread count.
/// * **Load balancing** — workers claim one index at a time from an atomic
///   cursor, so a few expensive items do not serialize behind a static
///   chunking.
/// * **Panic propagation** — a panic in any worker is resumed on the
///   calling thread after the remaining workers drain (the scope joins
///   them), so no result built from a partial map can escape.
///
/// `f` must derive any randomness it uses from `(index, item)` alone (e.g.
/// via a SplitMix64-finalized `(seed, index)` stream), never from shared
/// mutable state or execution order; otherwise determinism is forfeited —
/// by the caller, not the pool.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// Maps `f` over `items` on up to `threads` worker threads, handing each
/// worker **exclusive mutable access** to the items it claims, and returns
/// the per-item results in item order.
///
/// This is the batch-dispatch primitive for sharded engines: each item is
/// a shard's persistent scratch state (reused allocations, local indexes)
/// that the shard mutates while producing its result. Items are claimed
/// dynamically from an atomic cursor like [`par_map_indexed`], so skewed
/// shard loads balance; every item is claimed exactly once, so the mutable
/// borrows never alias (enforced with a per-item lock that is only ever
/// taken uncontended).
///
/// The determinism contract is the same as [`par_map_indexed`]: the result
/// (and final state) of item `i` must be a pure function of `(i, items[i])`
/// at entry, never of scheduling. With `threads <= 1` the items are mapped
/// inline in order and no thread is spawned.
pub fn par_map_indexed_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let _pool_span = omt_obs::span("par/map_mut");
    omt_obs::counter("par/maps", 1);
    omt_obs::counter("par/items", n as u64);
    // Each slot is locked exactly once, by the worker that claims its index
    // from the cursor — the mutex exists to hand out `&mut T` safely, not
    // to arbitrate contention.
    let slots: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, R)>, omt_obs::Registry)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().expect("claimed exactly once");
                        out.push((i, f(i, &mut guard)));
                    }
                    omt_obs::observe("par/worker_items", out.len() as u64);
                    (out, omt_obs::take_local())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (worker_results, registry) in per_worker {
        omt_obs::merge_into_local(registry);
        for (i, r) in worker_results {
            debug_assert!(results[i].is_none(), "index {i} computed twice");
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|s| s.expect("the cursor hands out every index exactly once"))
        .collect()
}

/// [`par_map_indexed_mut`] with per-worker scratch state: exclusive mutable
/// items **and** a reusable per-worker scratch value.
///
/// This is the direct-fill primitive for the parallel arena path: each item
/// is one counting-sort cell window (an exclusive `&mut` slice of the
/// member permutation) and the scratch is the bisection work stack reused
/// across every window a worker claims. `init` runs once per worker (once
/// total on the sequential path); items are claimed dynamically from an
/// atomic cursor, each exactly once, so the mutable borrows never alias.
///
/// The determinism contract combines those of [`par_map_indexed_mut`] and
/// [`par_map_with`]: the result (and final state) of item `i` must be a
/// pure function of `(i, items[i])` at entry — never of scheduling or of
/// scratch contents left by earlier items. With `threads <= 1` the items
/// are mapped inline in order and no thread is spawned.
pub fn par_map_with_mut<T, R, S, F, I>(items: &mut [T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let _pool_span = omt_obs::span("par/map_with_mut");
    omt_obs::counter("par/maps", 1);
    omt_obs::counter("par/items", n as u64);
    // As in `par_map_indexed_mut`: each slot is locked exactly once, by the
    // worker that claims its index from the cursor — the mutex hands out
    // `&mut T` safely, it never arbitrates contention.
    let slots: Vec<std::sync::Mutex<&mut T>> =
        items.iter_mut().map(std::sync::Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, R)>, omt_obs::Registry)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = slots[i].lock().expect("claimed exactly once");
                        out.push((i, f(&mut state, i, &mut guard)));
                    }
                    omt_obs::observe("par/worker_items", out.len() as u64);
                    (out, omt_obs::take_local())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (worker_results, registry) in per_worker {
        omt_obs::merge_into_local(registry);
        for (i, r) in worker_results {
            debug_assert!(results[i].is_none(), "index {i} computed twice");
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|s| s.expect("the cursor hands out every index exactly once"))
        .collect()
}

/// [`par_map_indexed`] with per-worker scratch state.
///
/// `init` runs once per worker (once total on the sequential path) and the
/// resulting state is threaded through every item that worker claims. This
/// exists for hot paths that reuse large scratch buffers — explicit work
/// stacks, partition scratch, per-cell index copies — across items instead
/// of reallocating them per item.
///
/// The determinism contract is the same as [`par_map_indexed`], with one
/// addition: `f` must treat the state as *scratch only*. The final result
/// for item `i` must be a pure function of `(index, item)` — never of
/// which worker ran it, or of what the scratch held from earlier items.
/// Every call site in this workspace guarantees this by fully overwriting
/// (or clearing) the scratch before use.
pub fn par_map_with<T, R, S, F, I>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let _pool_span = omt_obs::span("par/map");
    omt_obs::counter("par/maps", 1);
    omt_obs::counter("par/items", n as u64);
    let cursor = AtomicUsize::new(0);
    // Each worker returns its results plus its thread-local metric
    // registry, harvested just before the thread finishes.
    let per_worker: Vec<(Vec<(usize, R)>, omt_obs::Registry)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&mut state, i, &items[i])));
                    }
                    omt_obs::observe("par/worker_items", out.len() as u64);
                    (out, omt_obs::take_local())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    // Deterministic join: place every result by its item index, and fold
    // worker registries into the caller's in worker-index order (the
    // merge is commutative, so scheduling cannot change the totals).
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (results, registry) in per_worker {
        omt_obs::merge_into_local(registry);
        for (i, r) in results {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("the cursor hands out every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map_indexed(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = vec![];
        assert_eq!(par_map_indexed(&empty, 8, |_, &x| x), Vec::<u32>::new());
        assert_eq!(par_map_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map_indexed(&[1u32, 2, 3], 64, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn skewed_costs_still_join_in_order() {
        // Item 0 is far more expensive than the rest; its result must still
        // land first.
        let items: Vec<u64> = (0..32).collect();
        let out = par_map_indexed(&items, 4, |i, &x| {
            let spins = if i == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        let _ = par_map_indexed(&items, 4, |i, _| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn map_mut_gives_each_item_exclusive_access() {
        for threads in [1, 2, 4, 8] {
            let mut items: Vec<Vec<u64>> = (0..33).map(|i| vec![i]).collect();
            let out = par_map_indexed_mut(&mut items, threads, |i, scratch| {
                assert_eq!(scratch[0], i as u64);
                scratch.push(i as u64 * 2);
                scratch.iter().sum::<u64>()
            });
            assert_eq!(out, (0..33).map(|i| i * 3).collect::<Vec<u64>>());
            // Mutations persist in the caller's items, in place.
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item, &vec![i as u64, i as u64 * 2]);
            }
        }
    }

    #[test]
    fn map_mut_empty_and_single() {
        let mut empty: Vec<u32> = vec![];
        assert_eq!(
            par_map_indexed_mut(&mut empty, 8, |_, x| *x),
            Vec::<u32>::new()
        );
        let mut one = vec![7u32];
        assert_eq!(
            par_map_indexed_mut(&mut one, 8, |_, x| {
                *x += 1;
                *x
            }),
            vec![8]
        );
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "mut worker boom")]
    fn map_mut_worker_panics_propagate() {
        let mut items: Vec<usize> = (0..16).collect();
        let _ = par_map_indexed_mut(&mut items, 4, |i, _| {
            if i == 5 {
                panic!("mut worker boom");
            }
            i
        });
    }

    #[test]
    fn map_with_mut_combines_scratch_and_exclusive_items() {
        for threads in [1, 2, 4, 8] {
            // Items are disjoint windows of a conceptual array; each worker
            // reuses one scratch Vec across the windows it claims.
            let mut items: Vec<Vec<u64>> = (0..29).map(|i| vec![i, i + 1]).collect();
            let out = par_map_with_mut(
                &mut items,
                threads,
                Vec::<u64>::new,
                |scratch, i, window| {
                    scratch.clear();
                    scratch.extend_from_slice(window);
                    window.push(i as u64 * 10);
                    scratch.iter().sum::<u64>()
                },
            );
            assert_eq!(out, (0..29).map(|i| 2 * i + 1).collect::<Vec<u64>>());
            for (i, item) in items.iter().enumerate() {
                let i = i as u64;
                assert_eq!(item, &vec![i, i + 1, i * 10]);
            }
        }
    }

    #[test]
    fn map_with_mut_empty_and_single() {
        let mut empty: Vec<u32> = vec![];
        assert_eq!(
            par_map_with_mut(&mut empty, 8, || (), |(), _, x| *x),
            Vec::<u32>::new()
        );
        let mut one = vec![7u32];
        assert_eq!(
            par_map_with_mut(
                &mut one,
                8,
                || 1u32,
                |s, _, x| {
                    *x += *s;
                    *x
                }
            ),
            vec![8]
        );
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "with-mut worker boom")]
    fn map_with_mut_worker_panics_propagate() {
        let mut items: Vec<usize> = (0..16).collect();
        let _ = par_map_with_mut(
            &mut items,
            4,
            || (),
            |(), i, _| {
                if i == 5 {
                    panic!("with-mut worker boom");
                }
                i
            },
        );
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    /// Worker-side metrics must all land in the caller's registry at the
    /// join point, regardless of which worker recorded them.
    #[cfg(feature = "obs")]
    #[test]
    fn worker_metrics_merge_at_join() {
        if !omt_obs::enable_memory() {
            return; // OMT_TRACE=0 pinned recording off for this process
        }
        let _ = omt_obs::take_local();
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_indexed(&items, 4, |i, &x| {
            omt_obs::counter("par_test/claims", 1);
            omt_obs::observe("par_test/value", x);
            x + i as u64
        });
        assert_eq!(out.len(), 64);
        let reg = omt_obs::take_local();
        assert_eq!(reg.counter("par_test/claims"), 64);
        assert_eq!(reg.hist("par_test/value").unwrap().count, 64);
        assert_eq!(reg.counter("par/items"), 64);
        assert_eq!(reg.hist("par/worker_items").unwrap().count, 4);
    }
}
