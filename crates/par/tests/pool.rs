//! Pool-level determinism: the half of the differential harness that does
//! not need the tree algorithms. The other half (sequential-parity of the
//! actual constructions) lives in `omt-core/tests/parallel_parity.rs`.

use omt_par::par_map_indexed;
use omt_rng::rngs::SmallRng;
use omt_rng::{Rng, RngExt, SeedableRng, SplitMix64};

/// The stream-derivation rule the workspace standardizes on: fold the
/// experiment seed and the item index through the SplitMix64 finalizer
/// (the same shape as `omt_experiments::workload::trial_rng`).
fn stream_rng(seed: u64, index: usize) -> SmallRng {
    let z = SplitMix64::mix(
        SplitMix64::mix(seed.wrapping_add(SplitMix64::GAMMA)).wrapping_add(index as u64 + 1),
    );
    SmallRng::seed_from_u64(z)
}

/// A stand-in for a randomized per-item workload: a short random walk whose
/// endpoint depends on every draw of the item's stream.
fn walk(seed: u64, index: usize) -> (u64, f64) {
    let mut rng = stream_rng(seed, index);
    let mut acc = 0u64;
    let mut pos = 0.0f64;
    for _ in 0..64 {
        acc = acc.wrapping_add(rng.next_u64());
        pos += rng.random::<f64>() - 0.5;
    }
    (acc, pos)
}

#[test]
fn rng_streams_are_thread_count_invariant() {
    let items: Vec<usize> = (0..100).collect();
    let baseline = par_map_indexed(&items, 1, |i, _| walk(0xC0FFEE, i));
    for threads in [2, 3, 4, 8] {
        let got = par_map_indexed(&items, threads, |i, _| walk(0xC0FFEE, i));
        assert_eq!(
            baseline, got,
            "thread count {threads} changed a seed-indexed stream result"
        );
        // Bit-exact on the float component too.
        for (b, g) in baseline.iter().zip(&got) {
            assert_eq!(b.1.to_bits(), g.1.to_bits());
        }
    }
}

#[test]
fn streams_differ_across_indices_and_seeds() {
    let a = walk(1, 0);
    assert_ne!(a, walk(1, 1), "adjacent indices must get distinct streams");
    assert_ne!(a, walk(2, 0), "distinct seeds must get distinct streams");
}

#[test]
fn nested_pools_do_not_deadlock_or_reorder() {
    // An outer fan-out whose items themselves fan out (the experiments'
    // trial loop over parallel constructions has this shape).
    let outer: Vec<usize> = (0..6).collect();
    let expect: Vec<Vec<u64>> = outer
        .iter()
        .map(|&o| (0..8).map(|i| walk(o as u64, i).0).collect())
        .collect();
    let got = par_map_indexed(&outer, 3, |_, &o| {
        let inner: Vec<usize> = (0..8).collect();
        par_map_indexed(&inner, 2, |i, _| walk(o as u64, i).0)
    });
    assert_eq!(expect, got);
}

#[test]
fn results_with_heap_payloads_land_in_order() {
    let items: Vec<usize> = (0..50).collect();
    let out = par_map_indexed(&items, 4, |i, _| {
        let mut rng = stream_rng(9, i);
        let len = 1 + (rng.next_u64() % 17) as usize;
        (0..len).map(|_| rng.next_u64()).collect::<Vec<u64>>()
    });
    let seq: Vec<Vec<u64>> = items
        .iter()
        .map(|&i| {
            let mut rng = stream_rng(9, i);
            let len = 1 + (rng.next_u64() % 17) as usize;
            (0..len).map(|_| rng.next_u64()).collect()
        })
        .collect();
    assert_eq!(out, seq);
}
