//! Fault-injection fuzz campaigns: seeded schedules of loss, duplication,
//! jitter, partitions, crashes, graceful leaves, and stale coordinates.
//!
//! Every campaign asserts the protocol's two load-bearing promises:
//!
//! 1. **Eventual convergence** — once the fault window closes and the
//!    crash/leave schedule is exhausted, every surviving host ends up
//!    attached with a rooted parent chain (`orphans == 0`), the parent
//!    structure is a valid degree-capped forest, and both endpoints of
//!    every edge agree on it.
//! 2. **Determinism** — re-running the identical campaign with the same
//!    seed reproduces the report bit for bit (forest, message counts,
//!    network accounting, convergence time). This is what makes any
//!    fuzz failure replayable: `OMT_PROP_SEED` re-derives the exact
//!    campaign.
//!
//! Campaign sizes stay small (hundreds of hosts) so the whole suite runs
//! in seconds; the schedule space, not the host count, is what's being
//! explored here. Scale lives in the differential suite and the `proto`
//! experiment binary.
//!
//! **`OMT_HGRID=1` axis.** With `OMT_HGRID=1` in the environment,
//! `ProtoConfig::for_n` enables the shadow capacity-summary index, so
//! every campaign in this file additionally maintains the count-only
//! `omt-geom::hgrid` summaries and reconciles them against a from-scratch
//! rebuild after **every** delivery batch (a divergence panics the run).
//! The index is decision-neutral — `shadow_index_campaigns_are_neutral`
//! below pins that by running identical campaigns with it forced on and
//! off and comparing the reports bit for bit.

use omt_geom::{Disk, Region};
use omt_net::CoordDrift;
use omt_proto::{ProtoConfig, ProtoReport, ProtoSim};
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, SeedableRng};
use omt_sim::{FaultPlan, Partition};

/// One fully-specified campaign, derived from fuzzed scalars.
#[derive(Clone, Debug)]
struct Campaign {
    n: usize,
    degree: u32,
    seed: u64,
    faults: FaultPlan,
    drift: CoordDrift,
    crashes: u32,
    leaves: u32,
}

impl Campaign {
    fn config(&self) -> ProtoConfig {
        let mut cfg = ProtoConfig::for_n(self.n, self.degree);
        cfg.faults = self.faults.clone();
        // Failure detection needs keepalive sweeps running well past the
        // last fault: leave two liveness windows of margin, then let the
        // queue drain with joins/repairs still retrying.
        cfg.quiet_after = self.faults.fault_until + 80.0;
        cfg.deadline = cfg.quiet_after + 340.0;
        // Departure schedules interleave with the fault window. Ids are
        // spread with co-prime strides so crash and leave sets are
        // disjoint from each other.
        cfg.crashes = (0..self.crashes)
            .map(|i| (12.0 + i as f64 * 0.7, 1 + (i * 13) % self.n as u32))
            .collect();
        cfg.leaves = (0..self.leaves)
            .map(|i| (14.0 + i as f64 * 0.9, 2 + (i * 17) % (self.n as u32 - 1)))
            .collect();
        let crashed: Vec<u32> = cfg.crashes.iter().map(|&(_, id)| id).collect();
        cfg.leaves.retain(|&(_, id)| !crashed.contains(&id));
        cfg
    }

    fn run(&self) -> (ProtoReport, Result<(), String>) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let truth = Disk::unit().sample_n(&mut rng, self.n);
        let advertised = self.drift.apply(&truth, self.seed);
        let mut sim = ProtoSim::new(self.config(), &truth, &advertised, self.seed);
        let rep = sim.run();
        (rep, sim.check_agreement())
    }

    /// Same campaign with the shadow capacity index forced on or off,
    /// also re-checking the summaries reconcile at quiescence.
    fn run_with_hgrid(&self, on: bool) -> (ProtoReport, Result<(), String>) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let truth = Disk::unit().sample_n(&mut rng, self.n);
        let advertised = self.drift.apply(&truth, self.seed);
        let mut cfg = self.config();
        cfg.hgrid = on;
        let mut sim = ProtoSim::new(cfg, &truth, &advertised, self.seed);
        let rep = sim.run();
        sim.hgrid_reconcile()
            .unwrap_or_else(|e| panic!("{self:?}: index diverged at quiescence: {e}"));
        (rep, sim.check_agreement())
    }
}

/// Asserts the post-heal convergence contract on a finished campaign.
fn assert_converged(c: &Campaign, rep: &ProtoReport, agreement: &Result<(), String>) {
    assert_eq!(
        rep.alive + rep.departed,
        c.n,
        "{c:?}: host accounting is off"
    );
    assert_eq!(
        rep.departed,
        (c.config().crashes.len() + c.config().leaves.len()),
        "{c:?}: departure schedule not fully applied"
    );
    assert_eq!(rep.orphans, 0, "{c:?}: orphans after heal");
    let forest = rep.forest.as_ref().expect("orphan-free run has a forest");
    omt_tree::validate_parent_forest(forest, Some(c.degree))
        .unwrap_or_else(|e| panic!("{c:?}: {e:?}"));
    assert!(rep.max_out_degree <= c.degree, "{c:?}: degree cap broken");
    if let Err(e) = agreement {
        panic!("{c:?}: edge disagreement at quiescence: {e}");
    }
}

props! {
    // Loss + duplication + jitter (no partitions): the bread-and-butter
    // lossy-network campaign, with a slice of crashes and leaves.
    #[cases(24)]
    fn lossy_campaigns_converge(
        seed in 0u64..1_000_000,
        n in 150usize..320,
        dpick in 0u8..3,
        drop_p in 0.0f64..0.2,
        dup_p in 0.0f64..0.1,
        jitter in 0.0f64..0.6,
        crashes in 0u32..12,
        leaves in 0u32..12
    ) {
        let c = Campaign {
            n,
            degree: [2, 4, 6][dpick as usize],
            seed,
            faults: FaultPlan {
                drop_p,
                dup_p,
                jitter,
                fault_until: 30.0,
                ..FaultPlan::none()
            },
            drift: CoordDrift::none(),
            crashes,
            leaves,
        };
        let (rep, agreement) = c.run();
        assert_converged(&c, &rep, &agreement);
        prop_assert!(rep.orphans == 0);
    }

    // A partition splits the overlay in half mid-join (the rendezvous
    // always lands on side 0); the cut side must re-attach after heal.
    #[cases(16)]
    fn partition_campaigns_heal(
        seed in 0u64..1_000_000,
        n in 150usize..300,
        dpick in 0u8..3,
        bit in 0u32..5,
        start in 5.0f64..15.0,
        width in 10.0f64..25.0,
        drop_p in 0.0f64..0.1
    ) {
        let c = Campaign {
            n,
            degree: [2, 4, 6][dpick as usize],
            seed,
            faults: FaultPlan {
                drop_p,
                jitter: 0.2,
                fault_until: start + width,
                partitions: vec![Partition { start, end: start + width, bit }],
                ..FaultPlan::none()
            },
            drift: CoordDrift::none(),
            crashes: 0,
            leaves: 0,
        };
        let (rep, agreement) = c.run();
        assert_converged(&c, &rep, &agreement);
        prop_assert_eq!(rep.alive, n);
    }

    // Stale coordinates: a fraction of hosts advertise drifted positions,
    // so cells are assigned on lies while delay is charged on truth. The
    // tree must still form; only its quality degrades.
    #[cases(16)]
    fn stale_coordinate_campaigns_converge(
        seed in 0u64..1_000_000,
        n in 150usize..300,
        dpick in 0u8..3,
        drift in 0.0f64..0.3,
        stale_fraction in 0.0f64..1.0,
        drop_p in 0.0f64..0.1
    ) {
        let c = Campaign {
            n,
            degree: [2, 4, 6][dpick as usize],
            seed,
            faults: FaultPlan {
                drop_p,
                jitter: 0.3,
                fault_until: 25.0,
                ..FaultPlan::none()
            },
            drift: CoordDrift { drift, stale_fraction },
            crashes: 4,
            leaves: 4,
        };
        let (rep, agreement) = c.run();
        assert_converged(&c, &rep, &agreement);
        prop_assert!(rep.stretch >= 1.0 - 1e-9);
    }

    // Determinism under the kitchen sink: every fault class at once,
    // run twice — the two reports must match bit for bit.
    #[cases(12)]
    fn campaigns_replay_bit_identically(
        seed in 0u64..1_000_000,
        n in 150usize..260,
        dpick in 0u8..3,
        drop_p in 0.0f64..0.15,
        dup_p in 0.0f64..0.08,
        jitter in 0.0f64..0.5,
        bit in 0u32..4
    ) {
        let c = Campaign {
            n,
            degree: [2, 4, 6][dpick as usize],
            seed,
            faults: FaultPlan {
                drop_p,
                dup_p,
                jitter,
                fault_until: 35.0,
                partitions: vec![Partition { start: 8.0, end: 20.0, bit }],
                ..FaultPlan::none()
            },
            drift: CoordDrift { drift: 0.1, stale_fraction: 0.25 },
            crashes: 6,
            leaves: 6,
        };
        let (a, agreement) = c.run();
        let (b, _) = c.run();
        assert_converged(&c, &a, &agreement);
        prop_assert_eq!(&a.forest, &b.forest);
        prop_assert_eq!(&a.alive_ids, &b.alive_ids);
        prop_assert_eq!(&a.msg_counts, &b.msg_counts);
        prop_assert_eq!(a.net, b.net);
        prop_assert!(a.convergence_time == b.convergence_time);
        prop_assert!(a.radius == b.radius);
    }

    // The shadow capacity index must be invisible to the protocol: a
    // kitchen-sink campaign run with it on (reconciling the summary
    // counters against a from-scratch rebuild after every delivery batch
    // and again at quiescence) reports bit-identically to the same
    // campaign with it off.
    #[cases(10)]
    fn shadow_index_campaigns_are_neutral(
        seed in 0u64..1_000_000,
        n in 150usize..260,
        dpick in 0u8..3,
        drop_p in 0.0f64..0.15,
        dup_p in 0.0f64..0.08,
        jitter in 0.0f64..0.5,
        bit in 0u32..4
    ) {
        let c = Campaign {
            n,
            degree: [2, 4, 6][dpick as usize],
            seed,
            faults: FaultPlan {
                drop_p,
                dup_p,
                jitter,
                fault_until: 35.0,
                partitions: vec![Partition { start: 8.0, end: 20.0, bit }],
                ..FaultPlan::none()
            },
            drift: CoordDrift { drift: 0.1, stale_fraction: 0.25 },
            crashes: 6,
            leaves: 6,
        };
        let (off, agreement) = c.run_with_hgrid(false);
        let (on, _) = c.run_with_hgrid(true);
        assert_converged(&c, &off, &agreement);
        prop_assert_eq!(&off.forest, &on.forest);
        prop_assert_eq!(&off.alive_ids, &on.alive_ids);
        prop_assert_eq!(&off.msg_counts, &on.msg_counts);
        prop_assert_eq!(off.net, on.net);
        prop_assert!(off.convergence_time == on.convergence_time);
        prop_assert!(off.radius == on.radius);
    }
}
