//! Differential suite: the decentralized protocol against the
//! centralized `Polar_Grid` builder on identical point sets.
//!
//! With zero loss and zero jitter the protocol must reach quiescence with
//! every host attached, the parent structure a valid degree-capped
//! forest, both endpoints of every edge in agreement, and the tree radius
//! within a pinned factor of the centralized construction. The pins are
//! per degree cap and deliberately generous (measured worst cases are
//! roughly half of them — see `pinned_factor`); they exist to catch
//! regressions that change the protocol's shape, not to certify
//! near-optimality.
//!
//! Grid sizing is taken from the centralized run's report (`crep.rings`)
//! so both constructions quantize the disk identically — the comparison
//! is purely message-driven wiring vs. omniscient wiring.
//!
//! The n = 100_000 leg multiplies runtime by ~20 and is gated behind
//! `OMT_PROTO_FULL=1`; CI and `scripts/verify.sh` run the 1k/10k legs.

use omt_core::PolarGridBuilder;
use omt_geom::{Disk, Point2, Region};
use omt_proto::{ProtoConfig, ProtoSim};
use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;

const SEEDS: [u64; 2] = [11, 12];
const DEGREES: [u32; 3] = [2, 4, 6];

/// Pinned ceiling for `proto_radius / centralized_radius` per degree cap.
///
/// Measured worst cases over the suite's seeds at n ∈ {1k, 10k}:
/// deg 2 → 9.8, deg 4 → 5.8, deg 6 → 5.7. Degree 2 gets extra headroom
/// because binary in-cell subtrees are deepest and the factor grows
/// slowly with n (6.1 at 1k → 9.8 at 10k).
fn pinned_factor(degree: u32) -> f64 {
    match degree {
        2 => 22.0,
        4 => 14.0,
        _ => 14.0,
    }
}

/// Runs one faultless protocol instance next to the centralized builder
/// on the same points and checks every structural invariant.
fn differential_case(n: usize, degree: u32, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = Disk::unit().sample_n(&mut rng, n);
    let (tree, crep) = PolarGridBuilder::new()
        .max_out_degree(degree)
        .build_with_report(Point2::ORIGIN, &pts)
        .unwrap();
    let mut cfg = ProtoConfig::for_n(n, degree);
    cfg.rings = crep.rings;
    let mut sim = ProtoSim::new(cfg, &pts, &pts, seed);
    let rep = sim.run();

    // Everyone in, nobody stranded, quiescent before the deadline.
    assert_eq!(
        rep.alive, n,
        "n={n} deg={degree} seed={seed}: missing hosts"
    );
    assert_eq!(
        rep.orphans, 0,
        "n={n} deg={degree} seed={seed}: orphans at quiescence"
    );
    assert!(
        rep.convergence_time < rep.end_time + 1e-9,
        "n={n} deg={degree} seed={seed}: still churning at the end"
    );

    // Structural invariants: a valid degree-capped parent forest whose
    // edges both endpoints agree on.
    let forest = rep.forest.as_ref().expect("orphan-free run has a forest");
    assert_eq!(forest.len(), n);
    omt_tree::validate_parent_forest(forest, Some(degree))
        .unwrap_or_else(|e| panic!("n={n} deg={degree} seed={seed}: {e:?}"));
    assert!(rep.max_out_degree <= degree);
    sim.check_agreement()
        .unwrap_or_else(|e| panic!("n={n} deg={degree} seed={seed}: {e}"));

    // Radius parity: within the pinned factor of the centralized tree,
    // and never below the star lower bound.
    let central = tree.radius();
    assert!(central > 0.0);
    assert!(rep.radius >= rep.star_bound - 1e-12);
    let factor = rep.radius / central;
    assert!(
        factor <= pinned_factor(degree),
        "n={n} deg={degree} seed={seed}: radius factor {factor:.2} \
         exceeds pin {:.1} (proto {:.3} vs centralized {:.3})",
        pinned_factor(degree),
        rep.radius,
        central
    );
}

#[test]
fn differential_1k() {
    for degree in DEGREES {
        for seed in SEEDS {
            differential_case(1_000, degree, seed);
        }
    }
}

#[test]
fn differential_10k() {
    for degree in DEGREES {
        for seed in SEEDS {
            differential_case(10_000, degree, seed);
        }
    }
}

#[test]
fn differential_100k_full() {
    if std::env::var("OMT_PROTO_FULL").is_err() {
        eprintln!("skipping 100k differential leg; set OMT_PROTO_FULL=1 to run");
        return;
    }
    for degree in DEGREES {
        differential_case(100_000, degree, SEEDS[0]);
    }
}
