//! Decentralized join/leave/repair protocol for polar-grid multicast
//! trees.
//!
//! The paper's `Polar_Grid` builder is centralized: it sees every host
//! and wires the whole tree at once. Its conclusion asks for the
//! decentralized version — this crate is that protocol. Each host knows
//! only the advertised deployment parameters `(k, ρ)`, its own virtual
//! coordinates, the polar cell they land in
//! ([`omt_core::PolarGrid2::cell_of`]), its local
//! [`CellView`](omt_core::CellView), and its direct tree neighbors. All
//! coordination happens through [`Msg`] traffic over the deterministic,
//! fault-injected message engine of `omt-sim`; no host ever reads global
//! state.
//!
//! The resulting tree approximates the centralized construction: joins
//! route from the rendezvous down the aligned-cell core, the first host
//! of each cell becomes its representative, and later arrivals in the
//! same cell chain below it within the degree cap — the message-driven
//! analogue of the paper's core + in-cell wiring. The differential test
//! suite pins the radius gap against `Polar_Grid` on identical point
//! sets; the fault-fuzz suite pins eventual convergence under loss,
//! duplication, reordering, partitions, and stale coordinates.
//!
//! # Example
//!
//! ```
//! use omt_geom::{Disk, Region};
//! use omt_proto::{ProtoConfig, ProtoSim};
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::SeedableRng;
//!
//! let mut rng = SmallRng::seed_from_u64(5);
//! let hosts = Disk::unit().sample_n(&mut rng, 300);
//! let cfg = ProtoConfig::for_n(hosts.len(), 4);
//! let report = ProtoSim::new(cfg, &hosts, &hosts, 5).run();
//! assert_eq!(report.orphans, 0);
//! assert!(report.max_out_degree <= 4);
//! omt_tree::validate_parent_forest(report.forest.as_ref().unwrap(), Some(4)).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod host;
pub mod messages;
pub mod sim;

pub use host::{ChildLink, HostState, Parent};
pub use messages::Msg;
pub use sim::{MsgCounts, ProtoConfig, ProtoReport, ProtoSim, SOURCE};

#[cfg(test)]
mod tests {
    use super::*;
    use omt_geom::{Disk, Region};
    use omt_rng::rngs::SmallRng;
    use omt_rng::SeedableRng;
    use omt_sim::FaultPlan;

    fn points(n: usize, seed: u64) -> Vec<omt_geom::Point2> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Disk::unit().sample_n(&mut rng, n)
    }

    #[test]
    fn faultless_run_attaches_everyone() {
        let pts = points(500, 1);
        let cfg = ProtoConfig::for_n(pts.len(), 6);
        let rep = ProtoSim::new(cfg, &pts, &pts, 1).run();
        assert_eq!(rep.alive, 500);
        assert_eq!(rep.orphans, 0);
        assert!(rep.max_out_degree <= 6);
        assert!(rep.radius >= rep.star_bound);
        assert!(rep.convergence_time < rep.end_time + 1e-9);
        omt_tree::validate_parent_forest(rep.forest.as_ref().unwrap(), Some(6)).unwrap();
    }

    #[test]
    fn runs_are_bit_identical_per_seed() {
        let pts = points(200, 2);
        let run = |seed: u64| {
            let mut cfg = ProtoConfig::for_n(pts.len(), 4);
            cfg.faults = FaultPlan {
                drop_p: 0.1,
                dup_p: 0.05,
                jitter: 0.4,
                fault_until: 30.0,
                ..FaultPlan::none()
            };
            ProtoSim::new(cfg, &pts, &pts, seed).run()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.forest, b.forest);
        assert_eq!(a.msg_counts, b.msg_counts);
        assert_eq!(a.convergence_time, b.convergence_time);
        assert_eq!(a.net, b.net);
        let c = run(8);
        assert_ne!(a.net, c.net, "different seed, different fates");
    }

    #[test]
    fn graceful_leaves_keep_the_forest_valid() {
        let pts = points(300, 3);
        let mut cfg = ProtoConfig::for_n(pts.len(), 4);
        cfg.leaves = (1..=30u32)
            .map(|i| (20.0 + i as f64 * 0.3, i * 7))
            .collect();
        let rep = ProtoSim::new(cfg, &pts, &pts, 3).run();
        assert_eq!(rep.departed, 30);
        assert_eq!(rep.alive, 270);
        assert_eq!(rep.orphans, 0, "leavers must not strand anyone");
        omt_tree::validate_parent_forest(rep.forest.as_ref().unwrap(), Some(4)).unwrap();
    }

    #[test]
    fn crashes_heal_through_timeouts() {
        let pts = points(300, 4);
        let mut cfg = ProtoConfig::for_n(pts.len(), 4);
        cfg.crashes = (1..=20u32)
            .map(|i| (15.0 + i as f64 * 0.2, i * 11))
            .collect();
        cfg.quiet_after = 120.0;
        cfg.deadline = 500.0;
        let rep = ProtoSim::new(cfg, &pts, &pts, 4).run();
        assert_eq!(rep.departed, 20);
        assert_eq!(rep.orphans, 0, "crash repair must re-attach all subtrees");
        omt_tree::validate_parent_forest(rep.forest.as_ref().unwrap(), Some(4)).unwrap();
    }
}
