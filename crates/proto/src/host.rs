//! Per-host local state — everything a protocol participant is allowed
//! to know.
//!
//! A host holds its own coordinates (true and advertised), the polar cell
//! its advertised coordinate lands in, its parent link, its children with
//! last-heard stamps, and a routing table mapping cells to the hosts
//! covering them. Nothing here references global topology; the driver in
//! [`crate::sim`] only ever mutates a host through messages addressed to
//! it.

use std::collections::BTreeMap;

use omt_core::CellId;
use omt_geom::Point2;
use omt_sim::engine::HostId;

/// A host's parent link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parent {
    /// Not attached (joining, or orphaned and rejoining).
    Detached,
    /// Attached under another host (the rendezvous is host
    /// [`crate::SOURCE`]).
    Host(HostId),
}

/// A child link with the last time the child was heard from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildLink {
    /// The child's id.
    pub id: HostId,
    /// Last time a message from this child arrived.
    pub last_heard: f64,
}

/// The complete local state of one protocol participant.
#[derive(Clone, Debug)]
pub struct HostState {
    /// True position — delays are charged on this.
    pub coord: Point2,
    /// Advertised (possibly stale) position — cells are computed on this.
    pub advertised: Point2,
    /// The polar cell of the advertised position.
    pub cell: CellId,
    /// Whether the host process is running (false after crash/leave).
    pub alive: bool,
    /// Parent link.
    pub parent: Parent,
    /// Last time the parent was heard from (Pong or any parent message).
    pub parent_heard: f64,
    /// Children, in attach order.
    pub children: Vec<ChildLink>,
    /// Cell routing: which host covers the subtree of each known cell.
    /// A `BTreeMap` so iteration order is deterministic.
    pub routes: BTreeMap<CellId, HostId>,
    /// Hosts that must not accept this host's joins (grown on cycle cuts).
    pub avoid: Vec<HostId>,
    /// Join epoch: bumped on every attach/detach so stale retry timers
    /// can be recognized and dropped.
    pub epoch: u32,
    /// Current retry backoff for this host's join attempts.
    pub backoff: f64,
    /// Whether a root-path probe is outstanding (re-sent each tick until
    /// `ProbeOk` arrives).
    pub probe_pending: bool,
    /// Round-robin cursor for overflow forwarding: rotating the child a
    /// full host hands surplus joiners to keeps in-cell subtrees balanced
    /// instead of degenerating into chains.
    pub rr: usize,
}

impl HostState {
    /// Fresh, detached state for a host at `coord` advertising
    /// `advertised`, assigned to `cell`.
    pub fn new(coord: Point2, advertised: Point2, cell: CellId) -> Self {
        Self {
            coord,
            advertised,
            cell,
            alive: true,
            parent: Parent::Detached,
            parent_heard: 0.0,
            children: Vec::new(),
            routes: BTreeMap::new(),
            avoid: Vec::new(),
            epoch: 0,
            backoff: 0.0,
            probe_pending: false,
            rr: 0,
        }
    }

    /// Whether the host currently has a parent.
    #[inline]
    pub fn attached(&self) -> bool {
        matches!(self.parent, Parent::Host(_))
    }

    /// Index of `id` in the child list, if present.
    pub fn child_index(&self, id: HostId) -> Option<usize> {
        self.children.iter().position(|c| c.id == id)
    }

    /// Removes a child link and every routing entry pointing at it.
    pub fn drop_child(&mut self, id: HostId) {
        self.children.retain(|c| c.id != id);
        self.routes.retain(|_, &mut h| h != id);
    }

    /// Replaces `old` with `new` in the child list and routing table
    /// (graceful-leave successor swap, which preserves the degree count).
    pub fn swap_child(&mut self, old: HostId, new: HostId, now: f64) {
        for c in &mut self.children {
            if c.id == old {
                c.id = new;
                c.last_heard = now;
            }
        }
        for h in self.routes.values_mut() {
            if *h == old {
                *h = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_child_clears_routes() {
        let mut h = HostState::new(Point2::ORIGIN, Point2::ORIGIN, (0, 0));
        h.children.push(ChildLink {
            id: 7,
            last_heard: 0.0,
        });
        h.routes.insert((2, 1), 7);
        h.routes.insert((2, 2), 9);
        h.drop_child(7);
        assert!(h.child_index(7).is_none());
        assert_eq!(h.routes.len(), 1);
        assert_eq!(h.routes.get(&(2, 2)), Some(&9));
    }

    #[test]
    fn swap_child_preserves_degree_and_rewires_routes() {
        let mut h = HostState::new(Point2::ORIGIN, Point2::ORIGIN, (0, 0));
        h.children.push(ChildLink {
            id: 4,
            last_heard: 1.0,
        });
        h.routes.insert((1, 0), 4);
        h.swap_child(4, 11, 5.0);
        assert_eq!(h.children.len(), 1);
        assert_eq!(h.children[0].id, 11);
        assert_eq!(h.children[0].last_heard, 5.0);
        assert_eq!(h.routes.get(&(1, 0)), Some(&11));
    }
}
