//! The protocol driver: hosts exchanging messages over a faulty network.
//!
//! [`ProtoSim`] owns the per-host states and the
//! [`Network`], delivers each mailbox batch to its host,
//! and applies that host's *local* decision rules. The simulator itself is
//! omniscient only where a real deployment's physics would be: it charges
//! propagation delay on true coordinates and delivers messages; every
//! protocol decision reads nothing but the addressed host's own
//! [`HostState`].
//!
//! # Decision rules (summarized; DESIGN.md has the full argument)
//!
//! * **Join**: a joiner computes its polar cell from its advertised
//!   coordinate and sends `JoinReq` to the rendezvous. Each holder
//!   forwards along the deepest routing entry covering an ancestor of the
//!   target cell; with no entry it accepts (capacity permitting) or
//!   forwards to a child chosen round-robin. Accepting a host whose cell
//!   differs from the acceptor's records a routing entry, so the first
//!   host of a cell becomes its representative.
//! * **Liveness**: children ping parents every keepalive; parents answer
//!   `Pong` or `NotChild`. Both sides detach silently-dead peers after
//!   `liveness_timeout` and orphans rejoin through the rendezvous with
//!   their subtrees intact.
//! * **Cycle safety**: a repair re-attach triggers a root-path `Probe`.
//!   A probe revisiting a host on its recorded path has found a cycle;
//!   that host cuts its parent link, blacklists the acceptor, and
//!   rejoins. Once faults cease, probes are reliable, so every cycle is
//!   detected and cut — this is what makes post-heal convergence
//!   testable.
//! * **Leave**: a graceful leaver hands its position to its first child
//!   (`Handoff`), which adopts the remaining siblings up to its capacity
//!   and orphans the rest explicitly.

use std::collections::BTreeMap;

use omt_core::{bounds::min_rings_estimate, CellId, PolarGrid2};
use omt_geom::{HGrid, Point2, PolarPoint};
use omt_obs::{obs_count, obs_observe, obs_span};
use omt_sim::engine::HostId;
use omt_sim::{Delivery, FaultPlan, NetStats, Network};

use crate::host::{ChildLink, HostState, Parent};
use crate::messages::Msg;

/// The rendezvous host id. Always on side 0 of every
/// [`Partition`](omt_sim::Partition), like the paper's source.
pub const SOURCE: HostId = 0;

/// Deployment parameters and schedules for one protocol run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoConfig {
    /// Per-host out-degree cap (≥ 2), including the rendezvous.
    pub max_out_degree: u32,
    /// Advertised ring count `k` of the polar grid.
    pub rings: u32,
    /// Advertised disk radius `ρ`.
    pub rho: f64,
    /// Fixed per-hop latency added to every message.
    pub base_latency: f64,
    /// Keepalive (tick) interval.
    pub keepalive: f64,
    /// Silence threshold after which a peer is presumed dead.
    pub liveness_timeout: f64,
    /// Hosts wake up uniformly over `[0, join_spread)`.
    pub join_spread: f64,
    /// Ticks (keepalives, gossip) stop after this instant so the event
    /// queue can drain; joins and repairs keep retrying.
    pub quiet_after: f64,
    /// Hard stop: deliveries after this instant are discarded.
    pub deadline: f64,
    /// Initial join retry backoff (grows 1.5× per retry).
    pub retry_backoff: f64,
    /// Maximum forwarding hops for one `JoinReq` copy.
    pub max_join_hops: u32,
    /// Routing cells shared per gossip message (besides the own cell).
    pub gossip_fanout: usize,
    /// Network fault schedule.
    pub faults: FaultPlan,
    /// Graceful departures: `(time, host)`.
    pub leaves: Vec<(f64, HostId)>,
    /// Fail-stop crashes: `(time, host)`.
    pub crashes: Vec<(f64, HostId)>,
    /// Maintain the shadow capacity-summary index
    /// ([`omt_geom::HGrid`], count-only) alongside the run and reconcile
    /// it against a from-scratch rebuild after every delivery batch.
    /// Strictly decision-neutral: no protocol rule reads it.
    pub hgrid: bool,
}

impl ProtoConfig {
    /// Sensible defaults for `n` hosts in the unit disk at the given
    /// degree cap: rings from the paper's `Θ(log n)` estimate, keepalive
    /// cadence comfortably above message latencies, and a quiet window
    /// long enough for a faultless run to converge.
    pub fn for_n(n: usize, max_out_degree: u32) -> Self {
        Self {
            max_out_degree,
            rings: min_rings_estimate(n as u64).max(1),
            rho: 1.0,
            base_latency: 0.02,
            keepalive: 5.0,
            liveness_timeout: 16.0,
            join_spread: 10.0,
            quiet_after: 60.0,
            deadline: 400.0,
            retry_backoff: 3.0,
            max_join_hops: 96,
            gossip_fanout: 8,
            faults: FaultPlan::none(),
            leaves: Vec::new(),
            crashes: Vec::new(),
            hgrid: omt_geom::hgrid::env_enabled(),
        }
    }
}

/// Per-message-kind send counters (network messages only, not timers).
pub type MsgCounts = BTreeMap<&'static str, u64>;

/// The outcome of one protocol run.
#[derive(Clone, Debug)]
pub struct ProtoReport {
    /// Number of participant hosts (the rendezvous excluded).
    pub n: usize,
    /// Hosts still alive at the end.
    pub alive: usize,
    /// Hosts that left gracefully or crashed.
    pub departed: usize,
    /// Alive hosts whose parent chain does not reach the rendezvous.
    pub orphans: usize,
    /// Maximum root-to-host delay over rooted hosts (tree-path distance).
    pub radius: f64,
    /// The star lower bound: the largest direct source–host distance.
    pub star_bound: f64,
    /// `radius / star_bound` (1.0 when both are 0).
    pub stretch: f64,
    /// Largest observed out-degree (rendezvous included).
    pub max_out_degree: u32,
    /// Time of the last topology change (attach/detach/death).
    pub convergence_time: f64,
    /// Time the event queue drained (or the deadline).
    pub end_time: f64,
    /// Network accounting.
    pub net: NetStats,
    /// Messages sent, by kind.
    pub msg_counts: BTreeMap<String, u64>,
    /// For each alive host (ascending id), its parent as an index into
    /// the same alive-host ordering — `None` meaning child of the
    /// rendezvous. Present only when there are no orphans.
    pub forest: Option<Vec<Option<usize>>>,
    /// Ascending ids of the alive hosts `forest` indexes.
    pub alive_ids: Vec<HostId>,
}

/// The message-driven protocol simulator.
pub struct ProtoSim {
    cfg: ProtoConfig,
    grid: PolarGrid2,
    /// Index 0 is the rendezvous; participant `i` of the point set is
    /// host id `i + 1`.
    hosts: Vec<HostState>,
    net: Network<Msg>,
    counts: MsgCounts,
    last_change: f64,
    end_time: f64,
    /// Shadow capacity-summary index over the advertised cells: per cell,
    /// how many alive hosts have each open out-degree class. Maintained
    /// by count-only deltas at every membership/degree mutation and
    /// reconciled against a from-scratch rebuild after each delivery
    /// batch. Decision-neutral by construction — nothing above reads it.
    hgrid: Option<HGrid>,
}

impl ProtoSim {
    /// Sets up a run: `truth[i]` is host `i + 1`'s true position,
    /// `advertised[i]` the (possibly stale) position it announces. The
    /// rendezvous sits at the origin.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or a scheduled
    /// leave/crash names an unknown host id.
    pub fn new(cfg: ProtoConfig, truth: &[Point2], advertised: &[Point2], seed: u64) -> Self {
        assert_eq!(truth.len(), advertised.len(), "coordinate sets differ");
        assert!(!truth.is_empty(), "no hosts");
        let n = truth.len();
        let grid = PolarGrid2::new(cfg.rings, cfg.rho);
        let mut hosts = Vec::with_capacity(n + 1);
        hosts.push(HostState::new(Point2::ORIGIN, Point2::ORIGIN, (0, 0)));
        for (t, a) in truth.iter().zip(advertised) {
            let cell = grid.cell_of(&PolarPoint::from_cartesian(a));
            hosts.push(HostState::new(*t, *a, cell));
        }
        let mut net = Network::new(cfg.faults.clone(), cfg.base_latency, seed);
        // Wake-ups spread deterministically over the join window.
        for i in 0..n {
            let at = (i as f64 + 0.5) * cfg.join_spread / n as f64;
            net.timer(at, (i + 1) as HostId, Msg::JoinNow);
        }
        net.timer(cfg.keepalive, SOURCE, Msg::Tick);
        for &(at, id) in &cfg.leaves {
            assert!((1..=n as u32).contains(&id), "unknown leaver {id}");
            net.timer(at, id, Msg::LeaveNow);
        }
        for &(at, id) in &cfg.crashes {
            assert!((1..=n as u32).contains(&id), "unknown crasher {id}");
            net.timer(at, id, Msg::CrashNow);
        }
        let mut sim = Self {
            cfg,
            grid,
            hosts,
            net,
            counts: MsgCounts::new(),
            last_change: 0.0,
            end_time: 0.0,
            hgrid: None,
        };
        if sim.cfg.hgrid {
            sim.hgrid = Some(sim.build_hgrid());
        }
        sim
    }

    /// Runs the protocol to quiescence (or the deadline) and reports.
    pub fn run(&mut self) -> ProtoReport {
        let _g = obs_span!("proto/run");
        let mut batch = Vec::new();
        while let Some((t, dst)) = self.net.pop_mailbox(&mut batch) {
            if t > self.cfg.deadline {
                batch.clear();
                break;
            }
            self.end_time = t;
            for Delivery { msg, .. } in batch.drain(..) {
                self.handle(dst, msg);
            }
            if self.hgrid.is_some() {
                self.hgrid_reconcile()
                    .unwrap_or_else(|e| panic!("shadow capacity index diverged at t={t}: {e}"));
            }
        }
        self.report()
    }

    /// The grid every host derives from the advertised `(k, ρ)`.
    pub fn grid(&self) -> &PolarGrid2 {
        &self.grid
    }

    /// Read access to a host's local state (0 is the rendezvous) — for
    /// inspection and tests; the protocol itself never peeks.
    pub fn host(&self, id: HostId) -> &HostState {
        &self.hosts[id as usize]
    }

    /// Checks that both endpoints of every tree edge agree on it: each
    /// attached alive host appears in its parent's child list, and every
    /// child link points at an alive host that names this host as its
    /// parent. A quiescent faultless run must satisfy this exactly; after
    /// fault campaigns it holds once the keepalive sweeps have healed the
    /// last stale link.
    ///
    /// # Errors
    ///
    /// Returns a description of the first disagreement found.
    pub fn check_agreement(&self) -> Result<(), String> {
        for (id, h) in self.hosts.iter().enumerate() {
            if !h.alive {
                continue;
            }
            if let Parent::Host(p) = h.parent {
                let parent = &self.hosts[p as usize];
                if parent.alive && parent.child_index(id as HostId).is_none() {
                    return Err(format!("host {id} claims parent {p}, which disowns it"));
                }
            }
            for c in &h.children {
                let child = &self.hosts[c.id as usize];
                if child.alive && child.parent != Parent::Host(id as HostId) {
                    return Err(format!(
                        "host {id} lists child {}, whose parent is {:?}",
                        c.id, child.parent
                    ));
                }
            }
        }
        Ok(())
    }

    fn cap(&self) -> usize {
        self.cfg.max_out_degree as usize
    }

    /// Flat heap index of an advertised `(ring, segment)` cell.
    fn flat_cell(cell: CellId) -> usize {
        ((1u64 << cell.0) - 1 + cell.1) as usize
    }

    /// The host's degree class if it currently counts as an open parent
    /// (alive with spare out-degree), `None` otherwise. This is the one
    /// predicate the shadow index summarizes.
    fn open_class(&self, id: HostId) -> Option<usize> {
        let h = &self.hosts[id as usize];
        (h.alive && h.children.len() < self.cap()).then(|| h.children.len())
    }

    /// Folds a membership/degree mutation of host `id` into the shadow
    /// index via count-only deltas: `before` is [`Self::open_class`]
    /// sampled before the mutation. No-op when the index is off or the
    /// class did not change.
    fn hg_apply(&mut self, id: HostId, before: Option<usize>) {
        if self.hgrid.is_none() {
            return;
        }
        let after = self.open_class(id);
        if before == after {
            return;
        }
        let cell = Self::flat_cell(self.hosts[id as usize].cell);
        let hg = self.hgrid.as_mut().expect("checked above");
        if let Some(class) = before {
            hg.class_remove(cell, class);
        }
        if let Some(class) = after {
            hg.class_add(cell, class);
        }
    }

    /// Builds the shadow index from scratch over the current host states
    /// (rendezvous included; it advertises cell `(0, 0)`).
    fn build_hgrid(&self) -> HGrid {
        let k = self.grid.rings();
        let mut inner = Vec::with_capacity(k as usize + 1);
        inner.push(0.0);
        for ring in 1..=k {
            inner.push(self.grid.circle_radius(ring - 1));
        }
        let mut hg = HGrid::new(k, self.cap(), &inner);
        for id in 0..self.hosts.len() {
            if let Some(class) = self.open_class(id as HostId) {
                hg.class_add(Self::flat_cell(self.hosts[id].cell), class);
            }
        }
        hg
    }

    /// Checks the incrementally-maintained shadow index against a
    /// from-scratch rebuild (count-only comparison; the count deltas do
    /// not maintain delay summaries). `Ok(())` when the index is off.
    ///
    /// # Errors
    ///
    /// Returns the first counter disagreement found.
    pub fn hgrid_reconcile(&self) -> Result<(), String> {
        match &self.hgrid {
            None => Ok(()),
            Some(hg) => hg.same_counts(&self.build_hgrid()),
        }
    }

    fn send(&mut self, src: HostId, dst: HostId, msg: Msg) {
        obs_count!("proto/sent");
        *self.counts.entry(msg.kind()).or_insert(0) += 1;
        let d = self.hosts[src as usize]
            .coord
            .distance(&self.hosts[dst as usize].coord);
        self.net.send(src, dst, d, msg);
    }

    fn handle(&mut self, me: HostId, msg: Msg) {
        if !self.hosts[me as usize].alive {
            return;
        }
        match msg {
            Msg::JoinNow => {
                // Arm the host's keepalive clock, then start joining.
                let now = self.net.now();
                if now + self.cfg.keepalive <= self.cfg.quiet_after {
                    self.net.timer(now + self.cfg.keepalive, me, Msg::Tick);
                }
                self.start_join(me);
            }
            Msg::RetryJoin { epoch } => self.on_retry(me, epoch),
            Msg::Tick => self.on_tick(me),
            Msg::LeaveNow => self.on_leave_now(me),
            Msg::CrashNow => {
                let before = self.open_class(me);
                self.hosts[me as usize].alive = false;
                self.last_change = self.net.now();
                self.hg_apply(me, before);
            }
            Msg::JoinReq {
                joiner,
                cell,
                avoid,
                hops,
            } => self.on_join_req(me, joiner, cell, avoid, hops),
            Msg::Accept { parent } => self.on_accept(me, parent),
            Msg::Redirect => {} // the retry timer re-sends through the rendezvous
            Msg::Ping { from } => self.on_ping(me, from),
            Msg::Pong { from } => {
                let h = &mut self.hosts[me as usize];
                if h.parent == Parent::Host(from) {
                    h.parent_heard = self.net.now();
                }
            }
            Msg::NotChild { from } => self.on_not_child(me, from),
            Msg::Leave { from, successor } => self.on_leave(me, from, successor),
            Msg::Handoff {
                from,
                parent,
                children,
                routes,
            } => self.on_handoff(me, from, parent, children, routes),
            Msg::NewParent { parent } => {
                let now = self.net.now();
                let h = &mut self.hosts[me as usize];
                h.parent = Parent::Host(parent);
                h.parent_heard = now;
                self.last_change = now;
            }
            Msg::Orphaned => {
                self.hosts[me as usize].parent = Parent::Detached;
                self.hosts[me as usize].probe_pending = false;
                self.last_change = self.net.now();
                self.start_join(me);
            }
            Msg::Probe { origin, path } => self.on_probe(me, origin, path),
            Msg::ProbeOk => {
                let h = &mut self.hosts[me as usize];
                h.probe_pending = false;
                h.avoid.clear();
            }
            Msg::Gossip { from, cells } => self.on_gossip(me, from, cells),
        }
    }

    /// (Re)starts the join process: bump the epoch (invalidating older
    /// retry timers), send a fresh `JoinReq` to the rendezvous, arm the
    /// retry timer.
    fn start_join(&mut self, me: HostId) {
        let now = self.net.now();
        let (epoch, backoff, cell, avoid) = {
            let h = &mut self.hosts[me as usize];
            if h.attached() {
                return;
            }
            h.epoch += 1;
            h.backoff = self.cfg.retry_backoff;
            (h.epoch, h.backoff, h.cell, h.avoid.clone())
        };
        obs_count!("proto/joins");
        self.send(
            me,
            SOURCE,
            Msg::JoinReq {
                joiner: me,
                cell,
                avoid,
                hops: 0,
            },
        );
        self.net.timer(now + backoff, me, Msg::RetryJoin { epoch });
    }

    fn on_retry(&mut self, me: HostId, epoch: u32) {
        let now = self.net.now();
        let (backoff, cell, avoid) = {
            let h = &mut self.hosts[me as usize];
            if h.attached() || h.epoch != epoch {
                return;
            }
            h.backoff = (h.backoff * 1.5).min(4.0 * self.cfg.keepalive);
            (h.backoff, h.cell, h.avoid.clone())
        };
        self.send(
            me,
            SOURCE,
            Msg::JoinReq {
                joiner: me,
                cell,
                avoid,
                hops: 0,
            },
        );
        if now + backoff <= self.cfg.deadline {
            self.net.timer(now + backoff, me, Msg::RetryJoin { epoch });
        }
    }

    /// The deepest routing entry covering the target cell or one of its
    /// ancestors — the next hop for a descending `JoinReq`.
    fn route_lookup(
        &self,
        me: HostId,
        target: CellId,
        joiner: HostId,
        avoid: &[HostId],
    ) -> Option<HostId> {
        let h = &self.hosts[me as usize];
        let mut cell = Some(target);
        while let Some(c) = cell {
            if let Some(&hop) = h.routes.get(&c) {
                if hop != joiner && hop != me && !avoid.contains(&hop) {
                    return Some(hop);
                }
            }
            cell = self.grid.parent(c.0, c.1);
        }
        None
    }

    fn on_join_req(
        &mut self,
        me: HostId,
        joiner: HostId,
        cell: CellId,
        avoid: Vec<HostId>,
        hops: u32,
    ) {
        if joiner == me || (me != SOURCE && !self.hosts[me as usize].attached()) {
            return;
        }
        let may_forward = hops < self.cfg.max_join_hops;
        if may_forward {
            if let Some(next) = self.route_lookup(me, cell, joiner, &avoid) {
                self.send(
                    me,
                    next,
                    Msg::JoinReq {
                        joiner,
                        cell,
                        avoid,
                        hops: hops + 1,
                    },
                );
                return;
            }
        }
        let h = &self.hosts[me as usize];
        let full = h.children.len() >= self.cap();
        if !full && !avoid.contains(&me) {
            self.accept(me, joiner, cell);
            return;
        }
        if may_forward {
            // Rotate the overflow target so a full host spreads surplus
            // joiners across its children instead of piling them into the
            // first subtree (which degenerates into a chain).
            let next = {
                let h = &mut self.hosts[me as usize];
                let len = h.children.len();
                let mut pick = None;
                for k in 0..len {
                    let i = (h.rr + k) % len;
                    let c = h.children[i].id;
                    if c != joiner && !avoid.contains(&c) {
                        h.rr = (i + 1) % len;
                        pick = Some(c);
                        break;
                    }
                }
                pick
            };
            if let Some(next) = next {
                self.send(
                    me,
                    next,
                    Msg::JoinReq {
                        joiner,
                        cell,
                        avoid,
                        hops: hops + 1,
                    },
                );
                return;
            }
        }
        self.send(me, joiner, Msg::Redirect);
    }

    fn accept(&mut self, me: HostId, joiner: HostId, cell: CellId) {
        let now = self.net.now();
        let before = self.open_class(me);
        let my_cell = self.hosts[me as usize].cell;
        let h = &mut self.hosts[me as usize];
        if let Some(i) = h.child_index(joiner) {
            h.children[i].last_heard = now; // duplicate request: idempotent
        } else {
            h.children.push(ChildLink {
                id: joiner,
                last_heard: now,
            });
            // The first accepted host of a *different* cell becomes that
            // cell's representative: record the route. In-cell members
            // get no entry (the acceptor itself covers the cell).
            if me == SOURCE || cell != my_cell {
                h.routes.entry(cell).or_insert(joiner);
            }
            self.last_change = now;
        }
        obs_count!("proto/accepts");
        self.hg_apply(me, before);
        self.send(me, joiner, Msg::Accept { parent: me });
    }

    fn on_accept(&mut self, me: HostId, parent: HostId) {
        let now = self.net.now();
        // 0 = duplicate, 1 = redundant acceptor, 2 = fresh, 3 = repair.
        let act = {
            let h = &mut self.hosts[me as usize];
            match h.parent {
                Parent::Host(p) if p == parent => {
                    h.parent_heard = now;
                    0
                }
                Parent::Host(_) => 1,
                Parent::Detached => {
                    h.parent = Parent::Host(parent);
                    h.parent_heard = now;
                    h.backoff = self.cfg.retry_backoff;
                    self.last_change = now;
                    if h.children.is_empty() {
                        h.avoid.clear();
                        2
                    } else {
                        // Repair re-attach with a live subtree: verify
                        // the root path before trusting the position.
                        h.probe_pending = true;
                        3
                    }
                }
            }
        };
        match act {
            1 => self.send(me, parent, Msg::NotChild { from: me }),
            3 => self.send(
                me,
                parent,
                Msg::Probe {
                    origin: me,
                    path: vec![me],
                },
            ),
            _ => {}
        }
    }

    fn on_probe(&mut self, me: HostId, origin: HostId, mut path: Vec<HostId>) {
        if path.contains(&me) {
            // The parent chain loops through this host: cut the link,
            // blacklist the acceptor, rejoin through the rendezvous.
            obs_count!("proto/cycles_cut");
            let cut = {
                let h = &mut self.hosts[me as usize];
                match h.parent {
                    Parent::Host(p) => {
                        h.parent = Parent::Detached;
                        h.probe_pending = false;
                        if !h.avoid.contains(&p) {
                            h.avoid.push(p);
                            if h.avoid.len() > 8 {
                                h.avoid.remove(0);
                            }
                        }
                        Some(p)
                    }
                    Parent::Detached => None,
                }
            };
            if let Some(p) = cut {
                self.last_change = self.net.now();
                self.send(me, p, Msg::NotChild { from: me });
                self.start_join(me);
            }
            return;
        }
        if me == SOURCE {
            self.send(SOURCE, origin, Msg::ProbeOk);
            return;
        }
        if let Parent::Host(p) = self.hosts[me as usize].parent {
            path.push(me);
            self.send(me, p, Msg::Probe { origin, path });
        }
        // Detached: drop; the origin re-probes every tick.
    }

    fn on_tick(&mut self, me: HostId) {
        let now = self.net.now();
        // Parent side: keepalive or declare the parent dead.
        let parent = self.hosts[me as usize].parent;
        if let Parent::Host(p) = parent {
            if now - self.hosts[me as usize].parent_heard > self.cfg.liveness_timeout {
                obs_count!("proto/parent_timeouts");
                let h = &mut self.hosts[me as usize];
                h.parent = Parent::Detached;
                h.probe_pending = false;
                h.avoid.clear();
                self.last_change = now;
                self.start_join(me);
            } else {
                self.send(me, p, Msg::Ping { from: me });
                if self.hosts[me as usize].probe_pending {
                    self.send(
                        me,
                        p,
                        Msg::Probe {
                            origin: me,
                            path: vec![me],
                        },
                    );
                }
                let h = &self.hosts[me as usize];
                let mut cells = Vec::with_capacity(1 + self.cfg.gossip_fanout);
                cells.push(h.cell);
                cells.extend(h.routes.keys().take(self.cfg.gossip_fanout).copied());
                self.send(me, p, Msg::Gossip { from: me, cells });
            }
        }
        // Child side: evict the silently dead.
        let stale: Vec<HostId> = self.hosts[me as usize]
            .children
            .iter()
            .filter(|c| now - c.last_heard > self.cfg.liveness_timeout)
            .map(|c| c.id)
            .collect();
        let before = self.open_class(me);
        for c in stale {
            obs_count!("proto/evictions");
            self.hosts[me as usize].drop_child(c);
            self.last_change = now;
        }
        self.hg_apply(me, before);
        if now + self.cfg.keepalive <= self.cfg.quiet_after {
            self.net.timer(now + self.cfg.keepalive, me, Msg::Tick);
        }
    }

    fn on_ping(&mut self, me: HostId, from: HostId) {
        let now = self.net.now();
        let h = &mut self.hosts[me as usize];
        if let Some(i) = h.child_index(from) {
            h.children[i].last_heard = now;
            self.send(me, from, Msg::Pong { from: me });
        } else {
            self.send(me, from, Msg::NotChild { from: me });
        }
    }

    fn on_not_child(&mut self, me: HostId, from: HostId) {
        let now = self.net.now();
        let before = self.open_class(me);
        let h = &mut self.hosts[me as usize];
        if h.parent == Parent::Host(from) {
            // The parent disowned us: rejoin from scratch.
            h.parent = Parent::Detached;
            h.probe_pending = false;
            h.avoid.clear();
            self.last_change = now;
            self.start_join(me);
        } else if h.child_index(from).is_some() {
            h.drop_child(from);
            self.last_change = now;
        }
        self.hg_apply(me, before);
    }

    fn on_gossip(&mut self, me: HostId, from: HostId, cells: Vec<CellId>) {
        let now = self.net.now();
        let my_cell = self.hosts[me as usize].cell;
        let h = &mut self.hosts[me as usize];
        match h.child_index(from) {
            Some(i) => {
                h.children[i].last_heard = now;
                for cell in cells {
                    if me == SOURCE || cell != my_cell {
                        h.routes.entry(cell).or_insert(from);
                    }
                }
            }
            None => self.send(me, from, Msg::NotChild { from: me }),
        }
    }

    fn on_leave_now(&mut self, me: HostId) {
        let now = self.net.now();
        obs_count!("proto/leaves");
        let before = self.open_class(me);
        let (parent, children, routes) = {
            let h = &mut self.hosts[me as usize];
            h.alive = false;
            (
                h.parent,
                h.children.iter().map(|c| c.id).collect::<Vec<_>>(),
                h.routes.iter().map(|(&c, &h)| (c, h)).collect::<Vec<_>>(),
            )
        };
        self.last_change = now;
        self.hg_apply(me, before);
        let successor = children.first().copied();
        if let Parent::Host(p) = parent {
            self.send(
                me,
                p,
                Msg::Leave {
                    from: me,
                    successor,
                },
            );
        }
        match (successor, parent) {
            (Some(s), Parent::Host(p)) => {
                self.send(
                    me,
                    s,
                    Msg::Handoff {
                        from: me,
                        parent: p,
                        children: children[1..].to_vec(),
                        routes,
                    },
                );
            }
            (Some(_), Parent::Detached) => {
                // Leaving while detached: nobody can inherit the
                // position; the children must rejoin on their own.
                for c in children {
                    self.send(me, c, Msg::Orphaned);
                }
            }
            (None, _) => {}
        }
    }

    fn on_leave(&mut self, me: HostId, from: HostId, successor: Option<HostId>) {
        let now = self.net.now();
        let before = self.open_class(me);
        let h = &mut self.hosts[me as usize];
        if h.child_index(from).is_none() {
            return;
        }
        match successor {
            // A swap preserves the out-degree, so the index class is
            // unchanged and `hg_apply` below is a no-op for that arm.
            Some(s) if h.child_index(s).is_none() => h.swap_child(from, s, now),
            _ => h.drop_child(from),
        }
        self.last_change = now;
        self.hg_apply(me, before);
    }

    fn on_handoff(
        &mut self,
        me: HostId,
        from: HostId,
        parent: HostId,
        children: Vec<HostId>,
        routes: Vec<(CellId, HostId)>,
    ) {
        let now = self.net.now();
        let cap = self.cap();
        let before = self.open_class(me);
        let (adopted, dropped) = {
            let h = &mut self.hosts[me as usize];
            // Take over the leaver's tree position.
            h.parent = Parent::Host(parent);
            h.parent_heard = now;
            let mut adopted = Vec::new();
            let mut dropped = Vec::new();
            for c in children {
                if c == me || h.child_index(c).is_some() {
                    continue;
                }
                if h.children.len() < cap {
                    h.children.push(ChildLink {
                        id: c,
                        last_heard: now,
                    });
                    adopted.push(c);
                } else {
                    dropped.push(c);
                }
            }
            // Inherit only entries that point at hosts that are now our
            // children — anything else would be an unhealable route.
            for (cell, host) in routes {
                if host != me && h.child_index(host).is_some() {
                    h.routes.entry(cell).or_insert(host);
                }
            }
            let _ = from;
            (adopted, dropped)
        };
        self.last_change = now;
        self.hg_apply(me, before);
        for c in adopted {
            self.send(me, c, Msg::NewParent { parent: me });
        }
        for c in dropped {
            self.send(me, c, Msg::Orphaned);
        }
    }

    /// Resolves every alive host's parent chain and builds the report.
    fn report(&self) -> ProtoReport {
        let n = self.hosts.len() - 1;
        let alive_ids: Vec<HostId> = (1..=n as HostId)
            .filter(|&id| self.hosts[id as usize].alive)
            .collect();
        let departed = n - alive_ids.len();
        // Rooted-ness: walk parent chains with memoization. 0 = unknown,
        // 1 = on current path, 2 = rooted, 3 = broken (orphaned chain).
        let mut state = vec![0u8; self.hosts.len()];
        state[SOURCE as usize] = 2;
        let mut chain = Vec::new();
        for &id in &alive_ids {
            if state[id as usize] != 0 {
                continue;
            }
            chain.clear();
            let mut u = id;
            let verdict = loop {
                match state[u as usize] {
                    1 => break 3, // cycle
                    2 => break 2,
                    3 => break 3,
                    _ => {}
                }
                state[u as usize] = 1;
                chain.push(u);
                match self.hosts[u as usize].parent {
                    Parent::Host(p) if self.hosts[p as usize].alive => u = p,
                    _ => break 3,
                }
            };
            for &v in &chain {
                state[v as usize] = verdict;
            }
        }
        let orphans = alive_ids
            .iter()
            .filter(|&&id| state[id as usize] != 2)
            .count();
        // Depths along the tree (true-coordinate distances), rooted only.
        let mut depth = vec![f64::NAN; self.hosts.len()];
        depth[SOURCE as usize] = 0.0;
        let mut radius: f64 = 0.0;
        let mut star_bound: f64 = 0.0;
        for &id in &alive_ids {
            star_bound = star_bound.max(self.hosts[id as usize].coord.norm());
            if state[id as usize] != 2 {
                continue;
            }
            chain.clear();
            let mut u = id;
            while depth[u as usize].is_nan() {
                chain.push(u);
                u = match self.hosts[u as usize].parent {
                    Parent::Host(p) => p,
                    Parent::Detached => unreachable!("rooted host with no parent"),
                };
            }
            let mut d = depth[u as usize];
            for &v in chain.iter().rev() {
                let p = match self.hosts[v as usize].parent {
                    Parent::Host(p) => p,
                    Parent::Detached => unreachable!(),
                };
                d += self.hosts[v as usize]
                    .coord
                    .distance(&self.hosts[p as usize].coord);
                depth[v as usize] = d;
            }
            radius = radius.max(depth[id as usize]);
        }
        obs_observe!("proto/orphans", orphans as u64);
        // Forest over alive hosts (compact indices), if orphan-free.
        let forest = if orphans == 0 {
            let mut index_of = vec![usize::MAX; self.hosts.len()];
            for (i, &id) in alive_ids.iter().enumerate() {
                index_of[id as usize] = i;
            }
            Some(
                alive_ids
                    .iter()
                    .map(|&id| match self.hosts[id as usize].parent {
                        Parent::Host(SOURCE) => None,
                        Parent::Host(p) => Some(index_of[p as usize]),
                        Parent::Detached => unreachable!("orphan-free"),
                    })
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        let max_out_degree = forest
            .as_ref()
            .map(|f| {
                let mut deg = vec![0u32; f.len() + 1];
                for &p in f {
                    deg[p.map_or(0, |i| i + 1)] += 1;
                }
                deg.into_iter().max().unwrap_or(0)
            })
            .unwrap_or(0);
        let stretch = if star_bound > 0.0 {
            radius / star_bound
        } else {
            1.0
        };
        ProtoReport {
            n,
            alive: alive_ids.len(),
            departed,
            orphans,
            radius,
            star_bound,
            stretch,
            max_out_degree,
            convergence_time: self.last_change,
            end_time: self.end_time,
            net: self.net.stats(),
            msg_counts: self
                .counts
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            forest,
            alive_ids,
        }
    }
}
