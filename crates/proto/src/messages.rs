//! The protocol's message grammar.
//!
//! Every state change in the decentralized overlay is driven by one of
//! these messages arriving at a host, either over the faulty network or
//! as a local timer. The grammar mirrors the families named in
//! DESIGN.md: join (`JoinReq`/`Accept`/`Redirect`), liveness
//! (`Ping`/`Pong`/`NotChild`), departure (`Leave`/`Handoff`/`NewParent`/
//! `Orphaned`), cycle safety (`Probe`/`ProbeOk`), cell-state gossip
//! (`Gossip`), and local timers (`Tick`/`RetryJoin`/`JoinNow`/`LeaveNow`/
//! `CrashNow`).

use omt_core::CellId;
use omt_sim::engine::HostId;

/// A protocol message (or local timer event).
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A host asks to join the tree, targeting the polar cell its
    /// advertised coordinate lands in. Routed downward hop by hop: each
    /// holder either accepts the joiner or forwards the request.
    JoinReq {
        /// The joining host.
        joiner: HostId,
        /// The cell the joiner's advertised coordinate falls in.
        cell: CellId,
        /// Hosts that must not accept (grown after detected cycles).
        avoid: Vec<HostId>,
        /// Forwarding hops consumed so far (loop/staleness bound).
        hops: u32,
    },
    /// A holder accepts the joiner as its child.
    Accept {
        /// The accepting host — the joiner's new parent.
        parent: HostId,
    },
    /// A holder declines to place the joiner; the joiner backs off and
    /// retries through the rendezvous.
    Redirect,
    /// Child-to-parent keepalive.
    Ping {
        /// The pinging child.
        from: HostId,
    },
    /// Parent's keepalive reply.
    Pong {
        /// The replying parent.
        from: HostId,
    },
    /// "You are not my child / I am not your parent" — heals stale child
    /// links and route entries on both sides.
    NotChild {
        /// The host disclaiming the relationship.
        from: HostId,
    },
    /// Graceful departure announcement to the parent, nominating a
    /// successor to inherit the leaver's position (or `None` for a leaf).
    Leave {
        /// The departing host.
        from: HostId,
        /// The child that takes over the leaver's tree position.
        successor: Option<HostId>,
    },
    /// The leaver's state transfer to its successor: the parent to attach
    /// under, the siblings to adopt, and the routing entries to inherit.
    Handoff {
        /// The departing host.
        from: HostId,
        /// The leaver's parent, which the successor attaches under.
        parent: HostId,
        /// The leaver's other children, for the successor to adopt.
        children: Vec<HostId>,
        /// The leaver's cell routing entries.
        routes: Vec<(CellId, HostId)>,
    },
    /// Tells an adopted host who its new parent is.
    NewParent {
        /// The new parent.
        parent: HostId,
    },
    /// Tells a host its parent could not keep it; it must rejoin through
    /// the rendezvous (its own subtree stays attached to it).
    Orphaned,
    /// Root-path probe sent after any repair re-attach: forwarded up
    /// parent pointers, accumulating the visited hosts. A host that finds
    /// itself already on the path has found a cycle and cuts its parent
    /// link.
    Probe {
        /// The re-attached host that started the probe.
        origin: HostId,
        /// Hosts visited so far, starting with `origin`.
        path: Vec<HostId>,
    },
    /// The rendezvous's confirmation that a probe reached the root.
    ProbeOk,
    /// Upward cell-state gossip: a child tells its parent which cells are
    /// reachable through it (its own cell plus cells it routes for). The
    /// parent records *the child* as the next hop, so every routing entry
    /// a host holds points at one of its own children and is healed by
    /// ordinary child eviction — gossip can never leave a dangling route.
    Gossip {
        /// The gossiping child.
        from: HostId,
        /// Cells whose subtrees are reachable via the child.
        cells: Vec<CellId>,
    },
    /// Local timer: keepalive + liveness sweep.
    Tick,
    /// Local timer: re-send the join request if still detached. The epoch
    /// guards against stale timers from a previous attach cycle.
    RetryJoin {
        /// The join epoch this retry belongs to.
        epoch: u32,
    },
    /// Local timer: the host wakes up and starts joining.
    JoinNow,
    /// Local timer: the host departs gracefully.
    LeaveNow,
    /// Local timer: the host fail-stops silently.
    CrashNow,
}

impl Msg {
    /// Stable short label for per-kind message accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::JoinReq { .. } => "join_req",
            Msg::Accept { .. } => "accept",
            Msg::Redirect => "redirect",
            Msg::Ping { .. } => "ping",
            Msg::Pong { .. } => "pong",
            Msg::NotChild { .. } => "not_child",
            Msg::Leave { .. } => "leave",
            Msg::Handoff { .. } => "handoff",
            Msg::NewParent { .. } => "new_parent",
            Msg::Orphaned => "orphaned",
            Msg::Probe { .. } => "probe",
            Msg::ProbeOk => "probe_ok",
            Msg::Gossip { .. } => "gossip",
            Msg::Tick => "tick",
            Msg::RetryJoin { .. } => "retry_join",
            Msg::JoinNow => "join_now",
            Msg::LeaveNow => "leave_now",
            Msg::CrashNow => "crash_now",
        }
    }

    /// Whether this variant is a local timer rather than network traffic.
    pub fn is_timer(&self) -> bool {
        matches!(
            self,
            Msg::Tick | Msg::RetryJoin { .. } | Msg::JoinNow | Msg::LeaveNow | Msg::CrashNow
        )
    }
}
