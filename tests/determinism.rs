//! Cross-machine reproducibility: a fixed seed pins the whole pipeline,
//! from raw generator output through point sampling to the radius of the
//! constructed tree. If any of these change, results claimed against the
//! paper are no longer comparable across machines or commits.

use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::geom::{Ball, Point2, Region};
use overlay_multicast::rng::rngs::SmallRng;
use overlay_multicast::rng::SeedableRng;

/// The seed used for the pinned workload below.
const SEED: u64 = 2004;

/// Radius of the degree-6 Polar_Grid tree over 1,000 unit-disk points
/// drawn from `SmallRng::seed_from_u64(2004)`. Pinned to the exact f64;
/// any drift in the generator, the samplers, or the construction shows up
/// as a bit-level difference here.
const PINNED_RADIUS: f64 = 1.236_629_286_088_540_6;

fn thousand_point_tree_radius() -> f64 {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let points: Vec<Point2> = Ball::<2>::unit().sample_n(&mut rng, 1_000);
    PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap()
        .radius()
}

#[test]
fn polar_grid_radius_is_pinned_for_seed_2004() {
    let radius = thousand_point_tree_radius();
    assert_eq!(
        radius.to_bits(),
        PINNED_RADIUS.to_bits(),
        "radius {radius:.17} (bits {:#x}) drifted from pinned {PINNED_RADIUS:.17}",
        radius.to_bits(),
    );
}

#[test]
fn identical_seeds_give_identical_radii_across_runs() {
    let a = thousand_point_tree_radius();
    let b = thousand_point_tree_radius();
    assert_eq!(a.to_bits(), b.to_bits());
}
