//! Cross-machine reproducibility: a fixed seed pins the whole pipeline,
//! from raw generator output through point sampling to the radius of the
//! constructed tree. If any of these change, results claimed against the
//! paper are no longer comparable across machines or commits.

use overlay_multicast::algo::PolarGridBuilder;
use overlay_multicast::geom::{Ball, Point2, Region};
use overlay_multicast::rng::rngs::SmallRng;
use overlay_multicast::rng::SeedableRng;

/// The seed used for the pinned workload below.
const SEED: u64 = 2004;

/// Radius of the degree-6 Polar_Grid tree over 1,000 unit-disk points
/// drawn from `SmallRng::seed_from_u64(2004)`. Pinned to the exact f64;
/// any drift in the generator, the samplers, or the construction shows up
/// as a bit-level difference here.
const PINNED_RADIUS: f64 = 1.236_629_286_088_540_6;

fn thousand_point_tree_radius() -> f64 {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let points: Vec<Point2> = Ball::<2>::unit().sample_n(&mut rng, 1_000);
    PolarGridBuilder::new()
        .build(Point2::ORIGIN, &points)
        .unwrap()
        .radius()
}

#[test]
fn polar_grid_radius_is_pinned_for_seed_2004() {
    let radius = thousand_point_tree_radius();
    assert_eq!(
        radius.to_bits(),
        PINNED_RADIUS.to_bits(),
        "radius {radius:.17} (bits {:#x}) drifted from pinned {PINNED_RADIUS:.17}",
        radius.to_bits(),
    );
}

#[test]
fn identical_seeds_give_identical_radii_across_runs() {
    let a = thousand_point_tree_radius();
    let b = thousand_point_tree_radius();
    assert_eq!(a.to_bits(), b.to_bits());
}

/// Golden stream: exact degree-6 Polar_Grid radii for two seeds across
/// three problem sizes. Each value must reproduce bit-for-bit under both
/// the forced-sequential path and the 4-thread parallel path — the
/// parallel construction is part of the determinism contract.
const PINNED_RADII: [(u64, usize, f64); 6] = [
    (2004, 100, 1.996_663_175_912_053_2),
    (2004, 1_000, 1.236_629_286_088_540_6),
    (2004, 10_000, 1.114_178_643_433_743_7),
    (2005, 100, 1.805_383_687_313_799_8),
    (2005, 1_000, 1.285_077_066_044_268_7),
    (2005, 10_000, 1.099_604_644_238_691_1),
];

#[test]
fn polar_grid_radii_are_pinned_across_seeds_sizes_and_thread_counts() {
    for (seed, n, pinned) in PINNED_RADII {
        let mut rng = SmallRng::seed_from_u64(seed);
        let points: Vec<Point2> = Ball::<2>::unit().sample_n(&mut rng, n);
        for threads in [1usize, 4] {
            let radius = PolarGridBuilder::new()
                .threads(threads)
                .build(Point2::ORIGIN, &points)
                .unwrap()
                .radius();
            assert_eq!(
                radius.to_bits(),
                pinned.to_bits(),
                "seed={seed} n={n} threads={threads}: radius {radius:.17} \
                 (bits {:#x}) drifted from pinned {pinned:.17}",
                radius.to_bits(),
            );
        }
    }
}
