//! Cross-crate integration: the full pipelines a downstream user would run.

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::{PolarGridBuilder, SphereGridBuilder};
use overlay_multicast::baselines::{GreedyBuilder, GreedyObjective};
use overlay_multicast::experiments::runner::{run_fig8_row, run_table1_row};
use overlay_multicast::geom::{BoxRegion, Point, Point2, Point3, Region};
use overlay_multicast::net::{
    distortion_report, gnp_embed, stress, vivaldi_embed, DelayMatrix, GnpConfig, VivaldiConfig,
    WaxmanConfig,
};

/// Underlay → measurement → GNP embedding → tree → true-delay evaluation.
#[test]
fn measure_embed_build_evaluate() {
    let mut rng = SmallRng::seed_from_u64(1);
    let underlay = WaxmanConfig {
        routers: 150,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    let hosts: Vec<usize> = (0..60).collect();
    let delays = DelayMatrix::from_graph(&underlay, &hosts);

    let emb = gnp_embed::<3>(&delays, &GnpConfig::default(), &mut rng);
    let est = DelayMatrix::from_fn(delays.len(), |i, j| {
        emb.coordinates[i].distance(&emb.coordinates[j])
    });
    let s = stress(&delays, &est);
    assert!(s < 1.0, "embedding unusable: stress {s}");

    let receivers: Vec<usize> = (1..hosts.len()).collect();
    let coords: Vec<Point3> = receivers.iter().map(|&h| emb.coordinates[h]).collect();
    let tree = SphereGridBuilder::new()
        .max_out_degree(6)
        .build(emb.coordinates[0], &coords)
        .unwrap();
    tree.validate(Some(6)).unwrap();

    let report = distortion_report(&tree, &delays, 0, &receivers);
    assert!(report.true_radius >= report.true_lower_bound);
    // A sane deployment outcome: within an order of magnitude of optimal.
    assert!(report.true_ratio < 10.0, "ratio {}", report.true_ratio);
}

/// Vivaldi variant of the same pipeline.
#[test]
fn vivaldi_pipeline() {
    let mut rng = SmallRng::seed_from_u64(2);
    let underlay = WaxmanConfig {
        routers: 120,
        ..WaxmanConfig::default()
    }
    .sample(&mut rng);
    let hosts: Vec<usize> = (0..40).collect();
    let delays = DelayMatrix::from_graph(&underlay, &hosts);
    let coords: Vec<Point2> = vivaldi_embed(&delays, &VivaldiConfig::default(), &mut rng);
    let receivers: Vec<usize> = (1..hosts.len()).collect();
    let pts: Vec<Point2> = receivers.iter().map(|&h| coords[h]).collect();
    let tree = PolarGridBuilder::new().build(coords[0], &pts).unwrap();
    tree.validate(Some(6)).unwrap();
    let report = distortion_report(&tree, &delays, 0, &receivers);
    assert!(report.true_ratio >= 1.0 - 1e-9);
}

/// The experiment runner reproduces the paper's structural relations.
#[test]
fn experiment_runner_sanity() {
    let row = run_table1_row(5, 1000, 8);
    assert_eq!(row.n, 1000);
    assert!(row.deg2.delay > row.deg6.delay);
    assert!(row.deg6.delay < row.deg6.bound);
    assert!(row.deg6.core < row.deg6.delay);
    let f8 = run_fig8_row(5, 1000, 4);
    assert!(f8.delay2 > f8.delay10);
}

/// Trees built by different algorithms over the same workload are directly
/// comparable through the shared metrics API.
#[test]
fn cross_algorithm_comparison() {
    let mut rng = SmallRng::seed_from_u64(3);
    let region = BoxRegion::new(Point::new([-1.0, -1.0]), Point::new([1.0, 1.0]));
    let pts = region.sample_n(&mut rng, 800);
    let grid = PolarGridBuilder::new()
        .max_out_degree(4)
        .build(Point2::ORIGIN, &pts)
        .unwrap();
    let cpt = GreedyBuilder::new(GreedyObjective::MinDelay)
        .max_out_degree(4)
        .build(Point2::ORIGIN, &pts)
        .unwrap();
    let gm = grid.metrics();
    let cm = cpt.metrics();
    assert_eq!(gm.len, cm.len);
    assert!(gm.max_out_degree <= 4 && cm.max_out_degree <= 4);
    // Different constructions, same contract.
    assert!(gm.radius > 0.0 && cm.radius > 0.0);
    assert!(gm.total_edge_weight > 0.0);
}

/// Degenerate inputs flow through every layer without panics.
#[test]
fn degenerate_end_to_end() {
    // Empty multicast group.
    let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &[]).unwrap();
    assert!(tree.is_empty());
    assert_eq!(tree.metrics().len, 0);
    // Single receiver.
    let tree = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(Point2::ORIGIN, &[Point2::new([0.3, 0.4])])
        .unwrap();
    assert!((tree.radius() - 0.5).abs() < 1e-12);
    // Everyone at one location.
    let pts = vec![Point2::new([5.0, 5.0]); 64];
    let tree = PolarGridBuilder::new()
        .max_out_degree(2)
        .build(Point2::new([5.0, 5.0]), &pts)
        .unwrap();
    assert_eq!(tree.radius(), 0.0);
    tree.validate(Some(2)).unwrap();
}

/// The re-exported facade exposes every subsystem.
#[test]
fn facade_reexports() {
    use overlay_multicast::{algo, baselines, experiments, geom, net, tree};
    let _ = algo::PolarGridBuilder::new();
    let _ = baselines::GreedyBuilder::new(baselines::GreedyObjective::MinDelay);
    let _ = geom::Disk::unit();
    let _ = net::GnpConfig::default();
    let _: tree::TreeBuilder<2> = tree::TreeBuilder::new(geom::Point2::ORIGIN, vec![]);
    let _ = experiments::workload::PAPER_SIZES;
}

/// Extension modules compose: heterogeneous build → dissemination sim →
/// failure analysis, and min-diameter → streaming bound.
#[test]
fn extensions_compose() {
    use overlay_multicast::algo::{HeteroGridBuilder, MinDiameterBuilder};
    use overlay_multicast::geom::Disk;
    use overlay_multicast::sim::{simulate, simulate_with_failures, stream_completion, SimConfig};
    let mut rng = SmallRng::seed_from_u64(6);
    let pts = Disk::unit().sample_n(&mut rng, 600);
    let caps: Vec<u32> = (0..600).map(|i| [6u32, 2, 1, 0][i % 4]).collect();
    let (tree, report) = HeteroGridBuilder::new()
        .source_capacity(6)
        .build(Point2::ORIGIN, &pts, &caps)
        .unwrap();
    assert!(report.delay >= report.lower_bound);
    // Delivery simulation respects the tree's geometry.
    let delivery = simulate(&tree, &SimConfig::propagation_only());
    assert!((delivery.makespan - tree.radius()).abs() < 1e-9);
    // Streaming bound is consistent.
    let stream = stream_completion(
        &tree,
        &SimConfig {
            serialization_delay: 0.01,
            ..SimConfig::default()
        },
        100,
    );
    assert!(stream.completion > delivery.makespan);
    // Crash a tenth of the fleet.
    let failed: Vec<usize> = (0..600).step_by(10).collect();
    let f = simulate_with_failures(&tree, &failed);
    assert_eq!(f.reached + f.stranded + f.crashed, 600);

    // Min-diameter end-to-end.
    let (md_tree, md_report) = MinDiameterBuilder::new().build_2d(&pts).unwrap();
    assert!(md_report.diameter <= 2.0 * md_report.radius + 1e-9);
    md_tree.validate(Some(6)).unwrap();
}

/// The dynamic overlay's snapshots interoperate with the exporters and
/// the simulator.
#[test]
fn dynamic_overlay_interops() {
    use overlay_multicast::algo::DynamicOverlay;
    use overlay_multicast::geom::Disk;
    use overlay_multicast::sim::{simulate, SimConfig};
    use overlay_multicast::tree::MulticastTree;
    let mut rng = SmallRng::seed_from_u64(7);
    let mut overlay = DynamicOverlay::new(Point2::ORIGIN, 6).unwrap();
    let ids: Vec<_> = Disk::unit()
        .sample_n(&mut rng, 300)
        .into_iter()
        .map(|p| overlay.join(p))
        .collect();
    for id in ids.iter().step_by(5) {
        overlay.leave(*id).unwrap();
    }
    let snapshot = overlay.snapshot().unwrap();
    snapshot.validate(Some(6)).unwrap();
    // Round-trip through the text format.
    let text = snapshot.to_edge_list();
    let back = MulticastTree::<2>::from_edge_list(&text).unwrap();
    assert_eq!(snapshot, back);
    // And simulate delivery over it.
    let rep = simulate(&back, &SimConfig::propagation_only());
    assert!((rep.makespan - back.radius()).abs() < 1e-9);
}

/// The 3-D standalone bisection slots into the same workflows.
#[test]
fn bisection3_end_to_end() {
    use overlay_multicast::algo::Bisection3;
    use overlay_multicast::geom::Ball;
    let mut rng = SmallRng::seed_from_u64(8);
    let pts = Ball::<3>::unit().sample_n(&mut rng, 300);
    let tree = Bisection3::new(8)
        .unwrap()
        .build(Point3::ORIGIN, &pts)
        .unwrap();
    tree.validate(Some(8)).unwrap();
    let m = tree.metrics();
    assert!(m.radius >= pts.iter().map(|p| p.norm()).fold(0.0, f64::max) - 1e-9);
}
