//! Theorem-level claims of the paper, checked end-to-end across crates.

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::{bounds, Bisection, PolarGridBuilder, SphereGridBuilder};
use overlay_multicast::baselines::{exact_tree, optimal_radius_lower_bound};
use overlay_multicast::geom::{Ball, Disk, Point2, Point3, Region};

fn disk_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = SmallRng::seed_from_u64(seed);
    Disk::unit().sample_n(&mut rng, n)
}

/// Theorem 1: the bisection algorithm is a 5-approximation at out-degree 4
/// and a 9-approximation at out-degree 2 — certified against the exact
/// optimum on small instances and against the universal lower bound on
/// larger ones.
#[test]
fn theorem1_constant_factors() {
    for seed in 0..12u64 {
        let pts = disk_points(7, seed);
        let opt4 = exact_tree(Point2::ORIGIN, &pts, 4).unwrap().radius();
        let b4 = Bisection::new(4)
            .unwrap()
            .build(Point2::ORIGIN, &pts)
            .unwrap()
            .radius();
        assert!(b4 <= 5.0 * opt4 + 1e-9, "seed {seed}: {b4} > 5 x {opt4}");
        let opt2 = exact_tree(Point2::ORIGIN, &pts, 2).unwrap().radius();
        let b2 = Bisection::new(2)
            .unwrap()
            .build(Point2::ORIGIN, &pts)
            .unwrap()
            .radius();
        assert!(b2 <= 9.0 * opt2 + 1e-9, "seed {seed}: {b2} > 9 x {opt2}");
    }
    for seed in 0..4u64 {
        let pts = disk_points(2000, 100 + seed);
        let lb = optimal_radius_lower_bound(Point2::ORIGIN, &pts);
        let b4 = Bisection::new(4)
            .unwrap()
            .build(Point2::ORIGIN, &pts)
            .unwrap()
            .radius();
        assert!(b4 <= 5.0 * lb + 1e-9);
    }
}

/// Theorem 2: the polar-grid tree's delay approaches the optimum as n
/// grows, in 2-D at both degree settings.
#[test]
fn theorem2_asymptotic_optimality_2d() {
    for deg in [2u32, 6] {
        let mut ratios = Vec::new();
        for (n, seed) in [(100usize, 1u64), (1_000, 2), (10_000, 3), (100_000, 4)] {
            let pts = disk_points(n, seed);
            let (_, report) = PolarGridBuilder::new()
                .max_out_degree(deg)
                .build_with_report(Point2::ORIGIN, &pts)
                .unwrap();
            ratios.push(report.delay / report.lower_bound);
        }
        // Strictly improving and close to 1 by 100k (paper: 1.034 / 1.067).
        for w in ratios.windows(2) {
            assert!(w[1] < w[0], "deg {deg}: ratios {ratios:?}");
        }
        let last = *ratios.last().unwrap();
        assert!(last < 1.1, "deg {deg}: final ratio {last}");
    }
}

/// The Figure-8 claim: the 3-D algorithm also converges, more slowly, and
/// degree 2 trails degree 10 at equal n.
#[test]
fn figure8_three_dimensional_convergence() {
    let mut rng = SmallRng::seed_from_u64(8);
    let mut prev10 = f64::INFINITY;
    for n in [500usize, 5_000, 50_000] {
        let pts = Ball::<3>::unit().sample_n(&mut rng, n);
        let (_, r10) = SphereGridBuilder::new()
            .build_with_report(Point3::ORIGIN, &pts)
            .unwrap();
        let (_, r2) = SphereGridBuilder::new()
            .max_out_degree(2)
            .build_with_report(Point3::ORIGIN, &pts)
            .unwrap();
        assert!(r2.delay > r10.delay, "n={n}");
        assert!(r10.delay < prev10, "n={n}: no convergence");
        prev10 = r10.delay;
    }
}

/// Equation (5): the automatically selected ring count grows like
/// ½·log2(n), and equation (7)'s bound therefore shrinks toward the disk
/// radius.
#[test]
fn ring_growth_and_bound_decay() {
    let mut prev_bound = f64::INFINITY;
    for (n, seed) in [(100usize, 5u64), (1_000, 6), (10_000, 7), (100_000, 8)] {
        let pts = disk_points(n, seed);
        let (_, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        assert!(report.rings >= bounds::min_rings_estimate(n as u64));
        assert!(report.bound < prev_bound);
        prev_bound = report.bound;
        // The reported bound is consistent with the closed form.
        let closed = bounds::upper_bound_eq7(report.rings, 6, report.lower_bound * (1.0 + 1e-9));
        assert!((report.bound - closed).abs() < 1e-9);
    }
}

/// The near-linear running-time claim (Figure 7): time per node stays
/// within a small factor across a 100x size range.
#[test]
fn near_linear_running_time() {
    use std::time::Instant;
    let mut per_node = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        let pts = disk_points(n, n as u64);
        // Warm-up allocation effects aside, one timed run suffices for a
        // factor-level claim.
        let t0 = Instant::now();
        let _ = PolarGridBuilder::new().build(Point2::ORIGIN, &pts).unwrap();
        per_node.push(t0.elapsed().as_secs_f64() / n as f64);
    }
    let worst = per_node.iter().copied().fold(0.0f64, f64::max);
    let best = per_node.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        worst / best < 12.0,
        "per-node time varies too much: {per_node:?}"
    );
}

/// Lemma 1/2 empirically: throwing n balls into ~sqrt(n) buckets rarely
/// leaves a bucket empty, and the analytic bound really bounds the
/// frequency.
#[test]
fn occupancy_lemma_empirical() {
    use omt_rng::RngExt;
    let mut rng = SmallRng::seed_from_u64(77);
    let n = 4096u64;
    let buckets = 64u64; // n^(1/2)
    let trials = 400;
    let mut empties = 0;
    for _ in 0..trials {
        let mut seen = vec![false; buckets as usize];
        for _ in 0..n {
            seen[rng.random_range(0..buckets) as usize] = true;
        }
        if seen.iter().any(|s| !s) {
            empties += 1;
        }
    }
    let freq = empties as f64 / trials as f64;
    let bound = bounds::empty_bucket_probability_bound(n, 0.5);
    assert!(
        freq <= bound + 0.02,
        "empirical {freq} exceeds Lemma-1 bound {bound}"
    );
}

/// Cross-check one Table-I cell end to end with decent precision: the
/// degree-6 delay at n = 10,000 is 1.102 in the paper.
#[test]
fn table1_cell_n10000() {
    let mut acc = 0.0;
    let trials = 15;
    for seed in 0..trials {
        let pts = disk_points(10_000, 1000 + seed);
        let (_, r) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &pts)
            .unwrap();
        acc += r.delay;
    }
    let mean = acc / trials as f64;
    assert!(
        (mean - 1.102).abs() < 0.03,
        "mean delay {mean} vs paper 1.102"
    );
}
