//! Property-based invariants: every tree builder in the workspace must
//! produce a valid spanning tree under its degree budget on *arbitrary*
//! inputs, not just uniform disks.

use omt_rng::proptest::{collection, Strategy};
use omt_rng::rngs::SmallRng;
use omt_rng::{prop_assert, prop_assert_eq, props, SeedableRng};
use overlay_multicast::algo::{Bisection, NdGridBuilder, PolarGridBuilder, SphereGridBuilder};
use overlay_multicast::baselines::{
    random_tree, star_tree, BandwidthLatency, GreedyBuilder, GreedyObjective,
};
use overlay_multicast::geom::{Point2, Point3};

/// Arbitrary finite 2-D points within a modest range (the algorithms are
/// scale-invariant; the range just keeps arithmetic well-conditioned).
fn arb_points2(max_len: usize) -> impl Strategy<Value = Vec<Point2>> {
    collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new([x, y])).collect())
}

fn arb_points3(max_len: usize) -> impl Strategy<Value = Vec<Point3>> {
    collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 0..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, z)| Point3::new([x, y, z]))
            .collect()
    })
}

fn arb_source2() -> impl Strategy<Value = Point2> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point2::new([x, y]))
}

props! {
    #[cases(64)]
    fn polar_grid_deg6_always_valid(points in arb_points2(200), source in arb_source2()) {
        let tree = PolarGridBuilder::new().build(source, &points).unwrap();
        prop_assert_eq!(tree.len(), points.len());
        tree.validate(Some(6)).unwrap();
    }

    #[cases(64)]
    fn polar_grid_deg2_always_valid(points in arb_points2(200), source in arb_source2()) {
        let tree = PolarGridBuilder::new()
            .max_out_degree(2)
            .build(source, &points)
            .unwrap();
        tree.validate(Some(2)).unwrap();
    }

    #[cases(64)]
    fn polar_grid_respects_analytic_bound(points in arb_points2(300)) {
        // Equation (7) holds for every input, not just uniform ones.
        let (tree, report) = PolarGridBuilder::new()
            .build_with_report(Point2::ORIGIN, &points)
            .unwrap();
        prop_assert!(tree.radius() <= report.bound + 1e-9);
        prop_assert!(tree.radius() >= report.lower_bound - 1e-9);
    }

    #[cases(64)]
    fn bisection_deg4_always_valid(points in arb_points2(200), source in arb_source2()) {
        let tree = Bisection::new(4).unwrap().build(source, &points).unwrap();
        tree.validate(Some(4)).unwrap();
    }

    #[cases(64)]
    fn bisection_deg2_always_valid(points in arb_points2(200), source in arb_source2()) {
        let tree = Bisection::new(2).unwrap().build(source, &points).unwrap();
        tree.validate(Some(2)).unwrap();
    }

    #[cases(64)]
    fn sphere_grid_always_valid(points in arb_points3(200)) {
        let tree = SphereGridBuilder::new().build(Point3::ORIGIN, &points).unwrap();
        tree.validate(Some(10)).unwrap();
        let tree2 = SphereGridBuilder::new()
            .max_out_degree(2)
            .build(Point3::ORIGIN, &points)
            .unwrap();
        tree2.validate(Some(2)).unwrap();
    }

    #[cases(64)]
    fn nd_grid_always_valid(points in arb_points3(150)) {
        // Exercise the general-dimension path with D = 3.
        let tree = NdGridBuilder::new().build(Point3::ORIGIN, &points).unwrap();
        tree.validate(Some(2)).unwrap();
    }

    #[cases(64)]
    fn baselines_always_valid(points in arb_points2(120), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for deg in [1u32, 2, 6] {
            GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap()
                .validate(Some(deg))
                .unwrap();
            GreedyBuilder::new(GreedyObjective::MinEdge)
                .max_out_degree(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap()
                .validate(Some(deg))
                .unwrap();
            random_tree(Point2::ORIGIN, &points, deg, &mut rng)
                .unwrap()
                .validate(Some(deg))
                .unwrap();
            BandwidthLatency::uniform(deg)
                .build(Point2::ORIGIN, &points)
                .unwrap()
                .validate(Some(deg))
                .unwrap();
        }
    }

    #[cases(64)]
    fn star_radius_lower_bounds_every_builder(points in arb_points2(100)) {
        let lb = star_tree(Point2::ORIGIN, &points).unwrap().radius();
        for radius in [
            PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap().radius(),
            Bisection::new(4).unwrap().build(Point2::ORIGIN, &points).unwrap().radius(),
            GreedyBuilder::new(GreedyObjective::MinDelay)
                .max_out_degree(3)
                .build(Point2::ORIGIN, &points)
                .unwrap()
                .radius(),
        ] {
            prop_assert!(radius >= lb - 1e-9, "radius {radius} below star bound {lb}");
        }
    }

    #[cases(64)]
    fn tree_depth_cache_matches_path_recomputation(points in arb_points2(80)) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        for i in 0..tree.len() {
            // Recompute the delay by walking the path explicitly.
            let mut delay = 0.0;
            let mut prev = tree.point(i);
            for u in tree.path_to_source(i).skip(1) {
                delay += prev.distance(&tree.point(u));
                prev = tree.point(u);
            }
            delay += prev.distance(&tree.source());
            prop_assert!((delay - tree.depth(i)).abs() < 1e-9);
        }
    }

    #[cases(64)]
    fn traversals_cover_every_node(points in arb_points2(150)) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        let mut bfs: Vec<usize> = tree.iter_bfs().collect();
        let mut dfs: Vec<usize> = tree.iter_dfs().collect();
        bfs.sort_unstable();
        dfs.sort_unstable();
        let expect: Vec<usize> = (0..tree.len()).collect();
        prop_assert_eq!(bfs, expect.clone());
        prop_assert_eq!(dfs, expect);
    }

    #[cases(64)]
    fn diameter_at_least_radius(points in arb_points2(100)) {
        let tree = PolarGridBuilder::new().build(Point2::ORIGIN, &points).unwrap();
        prop_assert!(tree.diameter() >= tree.radius() - 1e-12);
        prop_assert!(tree.diameter() <= 2.0 * tree.radius() + 1e-12);
    }
}
