//! Degree-constrained minimal-delay overlay multicast trees.
//!
//! This is the umbrella crate of a full reproduction of *Overlay Multicast
//! Trees of Minimal Delay* (Anton Riabov, Zhen Liu, Li Zhang — ICDCS 2004).
//! It re-exports the workspace crates under stable module names:
//!
//! * [`geom`] — points, polar coordinates, grid cells, convex regions,
//!   uniform samplers.
//! * [`tree`] — the degree-constrained rooted multicast tree type with
//!   validation, metrics and traversal.
//! * [`algo`] — the paper's algorithms: the constant-factor **bisection**
//!   algorithm and the asymptotically optimal **polar grid** algorithm, in
//!   2-D, 3-D and general dimension, for out-degree budgets down to 2.
//! * [`baselines`] — comparison heuristics (compact tree, greedy Prim,
//!   bandwidth-latency, random, star) and an exact branch-and-bound solver
//!   for small instances.
//! * [`net`] — a synthetic network substrate: Waxman underlay topologies,
//!   shortest-path delays, and GNP/Vivaldi-style Euclidean embeddings.
//! * [`sim`] — a discrete-event dissemination simulator (serialization
//!   delays, jitter, failure injection) that makes the bandwidth cost
//!   behind the degree constraint observable.
//! * [`experiments`] — the harness that regenerates Table I and
//!   Figures 4–8 of the paper.
//!
//! # Quickstart
//!
//! Build a minimal-delay degree-6 tree over 5,000 hosts uniform in the unit
//! disk, with the source at the center:
//!
//! ```
//! use overlay_multicast::geom::{Disk, Point2, Region};
//! use overlay_multicast::algo::PolarGridBuilder;
//! use omt_rng::rngs::SmallRng;
//! use omt_rng::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = SmallRng::seed_from_u64(7);
//! let hosts = Disk::unit().sample_n(&mut rng, 5000);
//! let tree = PolarGridBuilder::new()
//!     .max_out_degree(6)
//!     .build(Point2::ORIGIN, &hosts)?;
//! assert!(tree.max_out_degree() <= 6);
//! // The longest source-to-receiver delay approaches the lower bound 1.
//! assert!(tree.radius() < 1.35);
//! # Ok(())
//! # }
//! ```

pub use omt_baselines as baselines;
pub use omt_core as algo;
pub use omt_experiments as experiments;
pub use omt_geom as geom;
pub use omt_net as net;
pub use omt_par as par;
pub use omt_rng as rng;
pub use omt_sim as sim;
pub use omt_tree as tree;
