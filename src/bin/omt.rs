//! `omt` — command-line front end for the overlay-multicast library.
//!
//! ```text
//! omt random  --n 2000 [--seed 7] [--ball]            > points.txt
//! omt build   --points points.txt [--degree 6]
//!             [--algorithm polar-grid|bisection|cpt]
//!             [--source X,Y]                           > tree.txt
//! omt stats   --tree tree.txt
//! omt render  --tree tree.txt [--width 800]            > tree.svg
//! omt dot     --tree tree.txt                          > tree.dot
//! omt simulate --tree tree.txt [--serialization S] [--processing P]
//! ```
//!
//! Points files are one `x y` pair per line; trees use the line-oriented
//! edge-list format of `MulticastTree::to_edge_list` (round-trippable).

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;

use omt_rng::rngs::SmallRng;
use omt_rng::SeedableRng;
use overlay_multicast::algo::{Bisection, PolarGridBuilder};
use overlay_multicast::baselines::{GreedyBuilder, GreedyObjective};
use overlay_multicast::geom::{Ball, Point2, Region};
use overlay_multicast::sim::{simulate, SimConfig};
use overlay_multicast::tree::{MulticastTree, SvgOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            // Write through io::Write so a downstream `| head` (broken
            // pipe) ends the program quietly instead of panicking.
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            match stdout
                .write_all(output.as_bytes())
                .and_then(|()| stdout.flush())
            {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: cannot write output: {e}");
                    ExitCode::from(1)
                }
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  omt random   --n N [--seed S] [--ball]
  omt build    --points FILE [--degree D] [--algorithm polar-grid|bisection|cpt] [--source X,Y]
  omt stats    --tree FILE
  omt render   --tree FILE [--width W] [--height H]
  omt dot      --tree FILE
  omt simulate --tree FILE [--serialization S] [--processing P]";

/// Executes a command line and returns what should be printed to stdout.
fn run(args: &[String]) -> Result<String, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("a command is required".into());
    };
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "random" => cmd_random(&flags),
        "build" => cmd_build(&flags),
        "stats" => cmd_stats(&flags),
        "render" => cmd_render(&flags),
        "dot" => cmd_dot(&flags),
        "simulate" => cmd_simulate(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Every flag any command understands; unknown flags are rejected rather
/// than silently ignored (a typo'd `--degre 2` must not build at the
/// default degree).
const KNOWN_FLAGS: [&str; 12] = [
    "n",
    "seed",
    "ball",
    "points",
    "degree",
    "algorithm",
    "source",
    "tree",
    "width",
    "height",
    "serialization",
    "processing",
];

/// Parses `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {flag:?}"));
        };
        if !KNOWN_FLAGS.contains(&name) {
            return Err(format!("unknown flag --{name}"));
        }
        // Boolean flags take no value.
        if name == "ball" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} expects a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("flag --{name} is required"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse()
        .map_err(|e| format!("bad {what} value {s:?}: {e}"))
}

fn cmd_random(flags: &HashMap<String, String>) -> Result<String, String> {
    let n: usize = parse(get(flags, "n")?, "--n")?;
    let seed: u64 = flags.get("seed").map_or(Ok(2004), |s| parse(s, "--seed"))?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::new();
    if flags.contains_key("ball") {
        for p in Ball::<3>::unit().sample_n(&mut rng, n) {
            out.push_str(&format!("{} {} {}\n", p[0], p[1], p[2]));
        }
    } else {
        for p in Ball::<2>::unit().sample_n(&mut rng, n) {
            out.push_str(&format!("{} {}\n", p[0], p[1]));
        }
    }
    Ok(out)
}

/// Parses a 2-D points file: one `x y` pair per line; `#` lines ignored.
fn parse_points(text: &str) -> Result<Vec<Point2>, String> {
    let mut points = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let x: f64 = parts
            .next()
            .ok_or_else(|| "missing x coordinate".to_string())
            .and_then(|t| parse(t, "x coordinate"))
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let y: f64 = parts
            .next()
            .ok_or_else(|| "missing y coordinate".to_string())
            .and_then(|t| parse(t, "y coordinate"))
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        points.push(Point2::new([x, y]));
    }
    Ok(points)
}

fn load_tree(flags: &HashMap<String, String>) -> Result<MulticastTree<2>, String> {
    let path = get(flags, "tree")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    MulticastTree::<2>::from_edge_list(&text)
}

fn cmd_build(flags: &HashMap<String, String>) -> Result<String, String> {
    let path = get(flags, "points")?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let points = parse_points(&text)?;
    let degree: u32 = flags
        .get("degree")
        .map_or(Ok(6), |s| parse(s, "--degree"))?;
    let source = match flags.get("source") {
        None => Point2::ORIGIN,
        Some(s) => {
            let (x, y) = s
                .split_once(',')
                .ok_or_else(|| format!("bad --source {s:?}: expected X,Y"))?;
            Point2::new([
                parse(x.trim(), "--source x")?,
                parse(y.trim(), "--source y")?,
            ])
        }
    };
    let algorithm = flags.get("algorithm").map_or("polar-grid", String::as_str);
    let tree = match algorithm {
        "polar-grid" => PolarGridBuilder::new()
            .max_out_degree(degree)
            .build(source, &points)
            .map_err(|e| e.to_string())?,
        "bisection" => Bisection::new(degree)
            .map_err(|e| e.to_string())?
            .build(source, &points)
            .map_err(|e| e.to_string())?,
        "cpt" => GreedyBuilder::new(GreedyObjective::MinDelay)
            .max_out_degree(degree)
            .build(source, &points)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    eprintln!(
        "built {} tree: {} nodes, radius {:.4}, max out-degree {}",
        algorithm,
        tree.len(),
        tree.radius(),
        tree.max_out_degree()
    );
    Ok(tree.to_edge_list())
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<String, String> {
    let tree = load_tree(flags)?;
    let m = tree.metrics();
    Ok(format!(
        "nodes:            {}\nradius:           {:.6}\ndiameter:         {:.6}\n\
         mean delay:       {:.6}\nmax hops:         {}\nmean hops:        {:.2}\n\
         max out-degree:   {}\ntotal edge weight:{:.6}\nworst stretch:    {:.2}\n",
        m.len,
        m.radius,
        m.diameter,
        m.mean_depth,
        m.max_hops,
        m.mean_hops,
        m.max_out_degree,
        m.total_edge_weight,
        m.max_stretch
    ))
}

fn cmd_render(flags: &HashMap<String, String>) -> Result<String, String> {
    let tree = load_tree(flags)?;
    let width: u32 = flags
        .get("width")
        .map_or(Ok(800), |s| parse(s, "--width"))?;
    let height: u32 = flags
        .get("height")
        .map_or(Ok(width), |s| parse(s, "--height"))?;
    Ok(tree.to_svg(&SvgOptions {
        width,
        height,
        ..SvgOptions::default()
    }))
}

fn cmd_dot(flags: &HashMap<String, String>) -> Result<String, String> {
    Ok(load_tree(flags)?.to_dot())
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<String, String> {
    let tree = load_tree(flags)?;
    let serialization: f64 = flags
        .get("serialization")
        .map_or(Ok(0.0), |s| parse(s, "--serialization"))?;
    let processing: f64 = flags
        .get("processing")
        .map_or(Ok(0.0), |s| parse(s, "--processing"))?;
    let report = simulate(
        &tree,
        &SimConfig {
            serialization_delay: serialization,
            processing_delay: processing,
            ..SimConfig::default()
        },
    );
    Ok(format!(
        "makespan:     {:.6}\nmean arrival: {:.6}\n(geometric radius: {:.6})\n",
        report.makespan,
        report.mean_arrival,
        tree.radius()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, String> {
        run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn random_then_build_then_stats_pipeline() {
        let dir = std::env::temp_dir().join(format!("omt_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let points = run_strs(&["random", "--n", "200", "--seed", "9"]).unwrap();
        assert_eq!(points.lines().count(), 200);
        let ppath = dir.join("p.txt");
        std::fs::write(&ppath, &points).unwrap();
        let tree = run_strs(&[
            "build",
            "--points",
            ppath.to_str().unwrap(),
            "--degree",
            "4",
        ])
        .unwrap();
        let tpath = dir.join("t.txt");
        std::fs::write(&tpath, &tree).unwrap();
        let stats = run_strs(&["stats", "--tree", tpath.to_str().unwrap()]).unwrap();
        assert!(stats.contains("nodes:            200"));
        let svg = run_strs(&["render", "--tree", tpath.to_str().unwrap()]).unwrap();
        assert!(svg.starts_with("<svg"));
        let dot = run_strs(&["dot", "--tree", tpath.to_str().unwrap()]).unwrap();
        assert!(dot.starts_with("digraph"));
        let sim = run_strs(&[
            "simulate",
            "--tree",
            tpath.to_str().unwrap(),
            "--serialization",
            "0.01",
        ])
        .unwrap();
        assert!(sim.contains("makespan"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_algorithm_builds() {
        let dir = std::env::temp_dir().join(format!("omt_cli_alg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let points = run_strs(&["random", "--n", "50"]).unwrap();
        let ppath = dir.join("p.txt");
        std::fs::write(&ppath, &points).unwrap();
        for alg in ["polar-grid", "bisection", "cpt"] {
            let out = run_strs(&[
                "build",
                "--points",
                ppath.to_str().unwrap(),
                "--algorithm",
                alg,
            ])
            .unwrap();
            let tree = MulticastTree::<2>::from_edge_list(&out).unwrap();
            assert_eq!(tree.len(), 50, "{alg}");
            tree.validate(Some(6)).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_strs(&[]).is_err());
        assert!(run_strs(&["frobnicate"]).is_err());
        assert!(run_strs(&["random"]).is_err()); // missing --n
        assert!(run_strs(&["build", "--points", "/no/such/file"]).is_err());
        assert!(run_strs(&["random", "--n", "ten"]).is_err());
        assert!(run_strs(&["build", "--points"]).is_err()); // missing value
                                                            // Typo'd flags are rejected, not silently ignored.
        assert!(run_strs(&["random", "--n", "5", "--sed", "9"]).is_err());
    }

    #[test]
    fn parse_points_handles_comments_and_blanks() {
        let pts = parse_points("# comment\n1.0 2.0\n\n 3.5  -1.25 \n").unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1], Point2::new([3.5, -1.25]));
        assert!(parse_points("1.0\n").is_err());
        assert!(parse_points("a b\n").is_err());
    }

    #[test]
    fn source_flag_and_ball_flag() {
        let pts3d = run_strs(&["random", "--n", "10", "--ball"]).unwrap();
        assert_eq!(pts3d.lines().next().unwrap().split_whitespace().count(), 3);
        let dir = std::env::temp_dir().join(format!("omt_cli_src_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ppath = dir.join("p.txt");
        std::fs::write(&ppath, "1.0 1.0\n2.0 2.0\n").unwrap();
        let out = run_strs(&[
            "build",
            "--points",
            ppath.to_str().unwrap(),
            "--source",
            "1.0,1.0",
        ])
        .unwrap();
        let tree = MulticastTree::<2>::from_edge_list(&out).unwrap();
        assert_eq!(tree.source(), Point2::new([1.0, 1.0]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
